package cache

// This file is the other meaning of "cache" in this repository: not the
// modeled CPU-cache penalty, but a concurrency-safe memoization store for
// simulation results. Experiment sweeps key each trial by a hash of its
// full configuration fingerprint plus its substream seed; repeated or
// overlapping sweeps then skip every cell that has already been simulated.
//
// The table is sharded: 64 independently-locked maps, with each key routed
// to its shard by a bit-mix of the key itself. Keys here are already
// FNV-1a outputs of the canonical trial-key encoder (resultstore.Enc) or
// of a fingerprint string, so their bits are uniform; the extra Fibonacci
// multiply only guards callers that use small hand-picked integers as
// keys. Sharding is what lets warm lookups scale with cores — the serving
// daemon's 10k req/s warm path is N goroutines doing RLock-per-shard reads
// instead of serializing on one table-wide mutex — while the hit/miss
// audit stays exact through per-shard atomic counters.

import (
	"sync"
	"sync/atomic"
)

// fnv64Offset/fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset uint64 = 0xcbf29ce484222325
	fnv64Prime  uint64 = 0x100000001b3
)

// HashKey collapses a textual configuration fingerprint into a 64-bit
// memoization key (FNV-1a). Collisions are theoretically possible but
// vanishingly rare at sweep scale (birthday bound ≈ n²/2⁶⁵); callers that
// cannot tolerate them should key a Memo by the full string instead.
func HashKey(fingerprint string) uint64 {
	h := fnv64Offset
	for i := 0; i < len(fingerprint); i++ {
		h ^= uint64(fingerprint[i])
		h *= fnv64Prime
	}
	return h
}

// HashBytes is HashKey for a byte slice — the same FNV-1a stream, so a
// fingerprint hashes identically whether it travels as string or bytes.
// The durable result store uses it both for canonical-encoding keys and
// for record checksums.
func HashBytes(p []byte) uint64 {
	h := fnv64Offset
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= fnv64Prime
	}
	return h
}

// memoShards is the shard count: a power of two comfortably above any
// plausible worker count, so concurrent warm readers almost never share a
// lock even when the key population is skewed.
const memoShards = 64

// shardOf routes a key to its shard: a Fibonacci multiply whose top bits
// select the shard. FNV-hashed keys are already uniform; the multiply
// keeps sequential or small-integer keys (tests, hand-rolled callers) from
// piling into shard 0.
func shardOf(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> (64 - 6)
}

// memoShard is one lock's worth of the table. Hit/miss counters are
// atomics so the hot read path takes only an RLock; the trailing pad
// spaces shards out so two cores hammering adjacent shards do not false-
// share a cache line.
type memoShard[V any] struct {
	mu     sync.RWMutex
	m      map[uint64]V
	hits   atomic.Uint64
	misses atomic.Uint64
	_      [80]byte
}

// Memo is a concurrency-safe memoization table from 64-bit keys to computed
// values. Any number of worker goroutines may Get and Put concurrently;
// two workers racing to fill the same key is benign for deterministic
// computations (both store the identical value).
type Memo[V any] struct {
	shards [memoShards]memoShard[V]
}

// NewMemo returns an empty memoization table.
func NewMemo[V any]() *Memo[V] {
	c := &Memo[V]{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]V)
	}
	return c
}

// Get returns the stored value for key. Every call counts as a hit or a
// miss, so Hits/Misses audit exactly how much simulation a sweep skipped.
func (c *Memo[V]) Get(key uint64) (V, bool) {
	s := &c.shards[shardOf(key)]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// Put stores the value for key, overwriting any previous entry.
func (c *Memo[V]) Put(key uint64, v V) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// Contains reports whether key is stored without counting a hit or a miss —
// the probe the durable store's append-dedup uses, which must not skew the
// hit/miss audit.
func (c *Memo[V]) Contains(key uint64) bool {
	s := &c.shards[shardOf(key)]
	s.mu.RLock()
	_, ok := s.m[key]
	s.mu.RUnlock()
	return ok
}

// Range calls fn for every stored entry until fn returns false. Iteration
// order is unspecified (shard then map order); fn must not call back into
// the memo.
func (c *Memo[V]) Range(fn func(key uint64, v V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Len returns the number of stored entries.
func (c *Memo[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Hits returns how many Gets found their key.
func (c *Memo[V]) Hits() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].hits.Load()
	}
	return n
}

// Misses returns how many Gets did not find their key — for a memoized
// sweep, exactly the number of trials that actually ran.
func (c *Memo[V]) Misses() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].misses.Load()
	}
	return n
}
