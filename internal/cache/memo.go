package cache

// This file is the other meaning of "cache" in this repository: not the
// modeled CPU-cache penalty, but a concurrency-safe memoization store for
// simulation results. Experiment sweeps key each trial by a hash of its
// full configuration fingerprint plus its substream seed; repeated or
// overlapping sweeps then skip every cell that has already been simulated.

import (
	"sync"
)

// fnv64Offset/fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset uint64 = 0xcbf29ce484222325
	fnv64Prime  uint64 = 0x100000001b3
)

// HashKey collapses a textual configuration fingerprint into a 64-bit
// memoization key (FNV-1a). Collisions are theoretically possible but
// vanishingly rare at sweep scale (birthday bound ≈ n²/2⁶⁵); callers that
// cannot tolerate them should key a Memo by the full string instead.
func HashKey(fingerprint string) uint64 {
	h := fnv64Offset
	for i := 0; i < len(fingerprint); i++ {
		h ^= uint64(fingerprint[i])
		h *= fnv64Prime
	}
	return h
}

// HashBytes is HashKey for a byte slice — the same FNV-1a stream, so a
// fingerprint hashes identically whether it travels as string or bytes.
// The durable result store uses it both for canonical-encoding keys and
// for record checksums.
func HashBytes(p []byte) uint64 {
	h := fnv64Offset
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= fnv64Prime
	}
	return h
}

// Memo is a concurrency-safe memoization table from 64-bit keys to computed
// values. Any number of worker goroutines may Get and Put concurrently;
// two workers racing to fill the same key is benign for deterministic
// computations (both store the identical value).
type Memo[V any] struct {
	mu     sync.RWMutex
	m      map[uint64]V
	hits   uint64
	misses uint64
}

// NewMemo returns an empty memoization table.
func NewMemo[V any]() *Memo[V] {
	return &Memo[V]{m: make(map[uint64]V)}
}

// Get returns the stored value for key. Every call counts as a hit or a
// miss, so Hits/Misses audit exactly how much simulation a sweep skipped.
func (c *Memo[V]) Get(key uint64) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores the value for key, overwriting any previous entry.
func (c *Memo[V]) Put(key uint64, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Contains reports whether key is stored without counting a hit or a miss —
// the probe the durable store's append-dedup uses, which must not skew the
// hit/miss audit.
func (c *Memo[V]) Contains(key uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.m[key]
	return ok
}

// Range calls fn for every stored entry until fn returns false. Iteration
// order is unspecified (map order); fn must not call back into the memo.
func (c *Memo[V]) Range(fn func(key uint64, v V) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, v := range c.m {
		if !fn(k, v) {
			return
		}
	}
}

// Len returns the number of stored entries.
func (c *Memo[V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits returns how many Gets found their key.
func (c *Memo[V]) Hits() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits
}

// Misses returns how many Gets did not find their key — for a memoized
// sweep, exactly the number of trials that actually ran.
func (c *Memo[V]) Misses() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.misses
}
