// Package profiling wires -cpuprofile / -memprofile flags into the CLIs so
// perf work can self-serve pprof captures of real figure and sweep runs
// (`go tool pprof pinsim cpu.out`) without ad-hoc rebuilds.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a stop
// function that finishes the CPU profile and, when memPath is non-empty,
// writes a heap profile. Call stop exactly once, after the measured work —
// with os.Exit in the path, defer alone is not enough, so CLIs route their
// exits through the returned stop.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: write heap profile: %v\n", err)
			}
		}
	}, nil
}
