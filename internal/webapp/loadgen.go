package webapp

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/stats"
)

// LoadConfig mirrors the paper's JMeter setup: Requests simultaneous web
// requests from Concurrency client workers.
type LoadConfig struct {
	Requests    int
	Concurrency int
	Timeout     time.Duration
}

// DefaultLoad is the paper's 1,000-request burst at a client pool size that
// saturates without exhausting sockets.
func DefaultLoad() LoadConfig {
	return LoadConfig{Requests: 1000, Concurrency: 64, Timeout: 30 * time.Second}
}

// LoadResult aggregates response times, the paper's Fig 5 metric.
type LoadResult struct {
	Requests int
	Errors   int
	Elapsed  time.Duration
	Mean     time.Duration
	Median   time.Duration
	P95      time.Duration
	Max      time.Duration
}

// RunLoad fires cfg.Requests GETs at baseURL/page/<n> and aggregates
// response times.
func RunLoad(baseURL string, cfg LoadConfig) (LoadResult, error) {
	if cfg.Requests <= 0 {
		return LoadResult{}, fmt.Errorf("webapp: load needs positive request count, got %d", cfg.Requests)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}
	lats := make([]time.Duration, cfg.Requests)
	errs := make([]bool, cfg.Requests)
	jobs := make(chan int, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		jobs <- i
	}
	close(jobs)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/page/%d", baseURL, i))
				if err != nil {
					errs[i] = true
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[i] = true
					continue
				}
				lats[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()

	res := LoadResult{Requests: cfg.Requests, Elapsed: time.Since(start)}
	ok := make([]float64, 0, cfg.Requests)
	var sum time.Duration
	for i, l := range lats {
		if errs[i] {
			res.Errors++
			continue
		}
		ok = append(ok, float64(l))
		sum += l
	}
	if len(ok) > 0 {
		res.Mean = sum / time.Duration(len(ok))
		// Quantiles follow stats' nearest-rank definition (ceil(p·n)-th
		// sample), not the previous ad-hoc index arithmetic — with real
		// network latencies the one-rank shift is immaterial.
		qs := stats.Percentiles(ok, 50, 95, 100)
		res.Median = time.Duration(qs[0])
		res.P95 = time.Duration(qs[1])
		res.Max = time.Duration(qs[2])
	}
	return res, nil
}
