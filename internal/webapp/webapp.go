// Package webapp is a real miniature CMS standing in for WordPress
// (§III-B3): an HTTP server whose page handler does the request shape the
// paper describes — read the request from the socket, fetch content from a
// small article store (with a tunable synthetic "disk" delay on cache
// misses), render a template, and write the response — plus a JMeter-like
// concurrent load generator with response-time statistics.
package webapp

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Article is one CMS page.
type Article struct {
	ID    int
	Title string
	Body  string
}

// Config tunes the server.
type Config struct {
	// Articles is the content count.
	Articles int
	// DiskDelay is the synthetic page-cache-miss penalty.
	DiskDelay time.Duration
	// MissEvery makes every n-th request a miss (0 = never).
	MissEvery int
	// RenderCost adds CPU work per render (template executions).
	RenderCost int
}

// DefaultConfig is a small site.
func DefaultConfig() Config {
	return Config{Articles: 64, DiskDelay: 2 * time.Millisecond, MissEvery: 7, RenderCost: 4}
}

// Server is the CMS.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	tmpl     *template.Template
	mu       sync.RWMutex
	articles map[int]Article
	hits     int64
	misses   int64
	requests int64
}

var pageTemplate = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><title>{{.Title}}</title></head>
<body><h1>{{.Title}}</h1><article>{{.Body}}</article></body></html>`))

// NewServer builds a server with synthetic content.
func NewServer(cfg Config) *Server {
	if cfg.Articles <= 0 {
		cfg.Articles = 16
	}
	s := &Server{cfg: cfg, tmpl: pageTemplate, articles: make(map[int]Article), mux: http.NewServeMux()}
	for i := 0; i < cfg.Articles; i++ {
		s.articles[i] = Article{
			ID:    i,
			Title: fmt.Sprintf("Article %d", i),
			Body:  fmt.Sprintf("Body of article %d: the art of CPU pinning, part %d.", i, i%7),
		}
	}
	s.mux.HandleFunc("/page/", s.handlePage)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Path[len("/page/"):]
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "bad article id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.requests++
	miss := s.cfg.MissEvery > 0 && s.requests%int64(s.cfg.MissEvery) == 0
	if miss {
		s.misses++
	} else {
		s.hits++
	}
	s.mu.Unlock()

	if miss && s.cfg.DiskDelay > 0 {
		time.Sleep(s.cfg.DiskDelay) // synthetic disk fetch
	}
	s.mu.RLock()
	a, ok := s.articles[id%s.cfg.Articles]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Render with a tunable amount of CPU work.
	for i := 0; i < s.cfg.RenderCost; i++ {
		w.Header().Set("X-Render-Pass", strconv.Itoa(i))
	}
	if err := s.tmpl.Execute(w, a); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fmt.Fprintf(w, "requests=%d hits=%d misses=%d\n", s.requests, s.hits, s.misses)
}

// Stats returns (requests, hits, misses).
func (s *Server) Stats() (int64, int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.requests, s.hits, s.misses
}
