package webapp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func server(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestPageRendering(t *testing.T) {
	_, ts := server(t, DefaultConfig())
	resp, err := http.Get(ts.URL + "/page/3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Article 3") {
		t.Fatalf("body: %s", body)
	}
}

func TestPageWrapsArticleIndex(t *testing.T) {
	_, ts := server(t, Config{Articles: 4})
	resp, err := http.Get(ts.URL + "/page/999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("indices wrap around the article store")
	}
}

func TestBadArticleID(t *testing.T) {
	_, ts := server(t, DefaultConfig())
	resp, err := http.Get(ts.URL + "/page/xyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHealthAndStatsEndpoints(t *testing.T) {
	s, ts := server(t, Config{Articles: 2, MissEvery: 2})
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/page/1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatal("healthz")
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "requests=4") {
		t.Fatalf("stats: %s", body)
	}
	reqs, hits, misses := s.Stats()
	if reqs != 4 || hits != 2 || misses != 2 {
		t.Fatalf("stats: %d/%d/%d", reqs, hits, misses)
	}
}

func TestMissDelayApplied(t *testing.T) {
	_, ts := server(t, Config{Articles: 2, MissEvery: 1, DiskDelay: 30 * time.Millisecond})
	t0 := time.Now()
	resp, err := http.Get(ts.URL + "/page/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if time.Since(t0) < 30*time.Millisecond {
		t.Fatal("miss delay not applied")
	}
}

func TestRunLoad(t *testing.T) {
	_, ts := server(t, Config{Articles: 8, MissEvery: 5, DiskDelay: time.Millisecond})
	res, err := RunLoad(ts.URL, LoadConfig{Requests: 50, Concurrency: 8, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d load errors", res.Errors)
	}
	if res.Requests != 50 || res.Mean <= 0 || res.Max < res.Median {
		t.Fatalf("stats: %+v", res)
	}
	if res.P95 < res.Median {
		t.Fatalf("p95 < median: %+v", res)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad("http://127.0.0.1:0", LoadConfig{}); err == nil {
		t.Fatal("zero requests must fail")
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	// Server that always 500s.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	res, err := RunLoad(ts.URL, LoadConfig{Requests: 10, Concurrency: 2, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 10 {
		t.Fatalf("errors %d, want 10", res.Errors)
	}
}
