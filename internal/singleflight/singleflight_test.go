package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCoalescesConcurrentCalls is the contract the serving daemon's cold
// path rides on: N concurrent Do calls for one key run fn exactly once,
// every call gets the same value, and exactly one call reports shared=false.
func TestDoCoalescesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var runs atomic.Int32
	release := make(chan struct{})
	const n = 32

	var wg sync.WaitGroup
	var leaders atomic.Int32
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			v, shared, err := g.Do(7, func() (int, error) {
				runs.Add(1)
				<-release // hold the flight open until every goroutine has called Do
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %v, %v", v, err)
			}
			if !shared {
				leaders.Add(1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Everyone has at least reached Do; wait for the followers to enqueue.
	for g.Coalesced() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d calls reported shared=false, want 1", got)
	}
	if g.Coalesced() != n-1 || g.Leads() != 1 {
		t.Fatalf("coalesced=%d leads=%d, want %d and 1", g.Coalesced(), g.Leads(), n-1)
	}
	if g.InFlight() != 0 {
		t.Fatalf("%d keys still in flight after completion", g.InFlight())
	}
}

// TestDoDistinctKeysDoNotSerialize: two keys in flight at once both make
// progress — the group lock is not held while fn runs.
func TestDoDistinctKeysDoNotSerialize(t *testing.T) {
	var g Group[string]
	aInside := make(chan struct{})
	aRelease := make(chan struct{})
	go g.Do(1, func() (string, error) {
		close(aInside)
		<-aRelease
		return "a", nil
	})
	<-aInside // key 1's leader is parked inside fn
	v, shared, err := g.Do(2, func() (string, error) { return "b", nil })
	if v != "b" || shared || err != nil {
		t.Fatalf("key 2 got %q shared=%v err=%v while key 1 in flight", v, shared, err)
	}
	close(aRelease)
}

// TestDoSequentialCallsRecompute: once a flight lands, the key is
// forgotten — the next Do runs fn again (the response cache, not the
// flight group, is what makes repeats cheap).
func TestDoSequentialCallsRecompute(t *testing.T) {
	var g Group[int]
	runs := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(9, func() (int, error) { runs++; return runs, nil })
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
	}
	if runs != 3 {
		t.Fatalf("fn ran %d times, want 3", runs)
	}
}

// TestDoSharesLeaderError: followers receive the leader's error verbatim.
func TestDoSharesLeaderError(t *testing.T) {
	var g Group[int]
	sentinel := errors.New("boom")
	inside := make(chan struct{})
	release := make(chan struct{})
	var followerErr error
	var followerShared bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-inside
		_, followerShared, followerErr = g.Do(5, func() (int, error) {
			t.Error("follower ran fn")
			return 0, nil
		})
	}()
	_, _, err := g.Do(5, func() (int, error) {
		close(inside)
		for g.Coalesced() == 0 {
			select {
			case <-release:
			default:
				time.Sleep(time.Millisecond)
			}
		}
		return 0, sentinel
	})
	wg.Wait()
	if !errors.Is(err, sentinel) || !errors.Is(followerErr, sentinel) {
		t.Fatalf("leader err %v, follower err %v, want %v", err, followerErr, sentinel)
	}
	if !followerShared {
		t.Fatal("follower did not report shared=true")
	}
}

// TestDoLeaderPanicWakesFollowers: a panicking fn must not strand waiters
// — followers get an error, the key is cleared, and the panic still
// reaches the leader's goroutine.
func TestDoLeaderPanicWakesFollowers(t *testing.T) {
	var g Group[int]
	inside := make(chan struct{})
	var followerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-inside
		_, _, followerErr = g.Do(3, func() (int, error) { return 0, nil })
	}()

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		g.Do(3, func() (int, error) {
			close(inside)
			for g.Coalesced() == 0 {
				time.Sleep(time.Millisecond)
			}
			panic("kaboom")
		})
	}()
	if r := <-panicked; r != "kaboom" {
		t.Fatalf("leader panic = %v, want kaboom", r)
	}
	wg.Wait()
	if followerErr == nil {
		t.Fatal("follower saw nil error from a panicked leader")
	}
	if g.InFlight() != 0 {
		t.Fatalf("key still in flight after panic")
	}
	// The group stays usable: the next Do is a fresh leader.
	if v, shared, err := g.Do(3, func() (int, error) { return 11, nil }); v != 11 || shared || err != nil {
		t.Fatalf("post-panic Do: v=%d shared=%v err=%v", v, shared, err)
	}
}
