// Package singleflight coalesces concurrent computations of the same key:
// when N goroutines ask for one key at once, exactly one (the leader) runs
// the computation and the other N−1 (the followers) block until the
// leader's result is ready and then share it.
//
// This is the serving daemon's cold-miss shield: a thundering herd of
// identical scenario requests — the millionth user asking the question the
// first user is still waiting on — costs one simulation, not N. Keys are
// the same 64-bit canonical-encoding hashes the trial store uses, so
// request identity and cache identity cannot drift apart.
//
// Unlike golang.org/x/sync/singleflight this version is generic (no
// interface{} boxing on a hot path), keyed by uint64 instead of string,
// and counts coalesced calls for the daemon's /statsz audit.
package singleflight

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// call is one in-flight computation: the leader fills val/err and closes
// done; followers block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group coalesces Do calls per key. The zero value is ready to use; a
// Group must not be copied after first use.
type Group[V any] struct {
	mu        sync.Mutex
	calls     map[uint64]*call[V]
	leads     atomic.Uint64
	coalesced atomic.Uint64
}

// Do returns the result of running fn for key. If another Do for the same
// key is already in flight, the call blocks until that leader finishes and
// returns the leader's result with shared=true — fn is not run. Otherwise
// this call is the leader: it runs fn (outside the group lock, so distinct
// keys never serialize) and hands the result to every follower that
// arrived meanwhile.
//
// The result — including fn's error — is shared only with followers that
// arrived while the call was in flight; once the leader finishes, the key
// is forgotten and the next Do computes afresh. A panicking fn is
// re-panicked in the leader after waking its followers with an error, so a
// crashed computation can never strand waiters.
func (g *Group[V]) Do(key uint64, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[uint64]*call[V])
	}
	if c, inFlight := g.calls[key]; inFlight {
		g.mu.Unlock()
		g.coalesced.Add(1)
		<-c.done
		return c.val, true, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	g.leads.Add(1)

	finished := false
	defer func() {
		if !finished {
			// fn panicked: wake followers with a real error (a closed channel
			// with zero value and nil error would read as success) before the
			// panic continues up the leader's stack.
			c.err = fmt.Errorf("singleflight: leader panicked computing key %#x", key)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, false, c.err
}

// Coalesced reports how many Do calls were followers — requests served
// without running their computation because an identical one was already
// in flight.
func (g *Group[V]) Coalesced() uint64 { return g.coalesced.Load() }

// Leads reports how many Do calls ran their computation as leader.
func (g *Group[V]) Leads() uint64 { return g.leads.Load() }

// InFlight reports how many keys currently have a leader running.
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
