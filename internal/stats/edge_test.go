package stats

// Edge-case coverage for the quantile and CI-overlap helpers: NaN inputs,
// single-element samples, and out-of-order percentile lists — the inputs a
// report path can feed them when a simulation produces a degenerate cell.

import (
	"math"
	"testing"
)

func TestPercentileSortedNaNP(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := PercentileSorted(xs, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("PercentileSorted(xs, NaN) = %v, want NaN", got)
	}
	if got := Percentile(xs, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Percentile(xs, NaN) = %v, want NaN", got)
	}
	got := Percentiles(xs, 50, math.NaN(), 100)
	if got[0] != 2 || !math.IsNaN(got[1]) || got[2] != 3 {
		t.Fatalf("Percentiles with NaN p = %v, want [2 NaN 3]", got)
	}
}

func TestPercentileNaNData(t *testing.T) {
	// NaN data values make ordering unspecified, but every quantile request
	// must still index in range — no panic, some element (possibly NaN) out.
	xs := []float64{math.NaN(), 1, math.NaN(), 3}
	for _, p := range []float64{0, 50, 95, 100} {
		_ = Percentile(xs, p)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	xs := []float64{7.5}
	for _, p := range []float64{-10, 0, 1, 50, 99, 100, 200} {
		if got := PercentileSorted(xs, p); got != 7.5 {
			t.Fatalf("PercentileSorted([7.5], %v) = %v, want 7.5", p, got)
		}
	}
	if got := MedianSorted(xs); got != 7.5 {
		t.Fatalf("MedianSorted([7.5]) = %v", got)
	}
}

func TestPercentilesUnsortedPs(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got := Percentiles(xs, 100, 1, 50, 0)
	want := []float64{5, 1, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Percentiles(xs, 100,1,50,0) = %v, want %v", got, want)
		}
	}
	// Output length always matches ps, even for empty samples.
	if got := Percentiles(nil, 99, 50); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("Percentiles(nil, ...) = %v, want [0 0]", got)
	}
	if got := Percentiles(xs); len(got) != 0 {
		t.Fatalf("Percentiles(xs) = %v, want []", got)
	}
}

func TestOverlapsNaN(t *testing.T) {
	good := Summary{Mean: 1, CI95: 0.1}
	for _, bad := range []Summary{
		{Mean: math.NaN(), CI95: 0.1},
		{Mean: 1, CI95: math.NaN()},
	} {
		// Every NaN comparison is false, so a NaN summary reports
		// non-overlap — "cannot show equivalence", the conservative answer
		// for the paper's significance criterion.
		if Overlaps(good, bad) || Overlaps(bad, good) {
			t.Fatalf("Overlaps with NaN summary %+v = true, want false", bad)
		}
	}
	// Zero-width intervals at the same point still overlap.
	a := Summary{Mean: 2}
	if !Overlaps(a, a) {
		t.Fatal("identical point summaries should overlap")
	}
}
