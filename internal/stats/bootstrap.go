package stats

// The resampling backbone of the hypothesis harness. The paper reports
// Student-t 95% intervals (Summary.CI95); hypothesis runs need intervals
// that do not lean on normality — per-seed effect sizes are ratios of
// means, whose sampling distribution is skewed at the small seed counts a
// CI-speed run can afford. BootstrapCI gives the percentile interval,
// BootstrapCIBCa the bias-corrected-and-accelerated one (the estimator the
// findings report), RatioOfMeansCI the paired effect-size helper, and
// RunUntilTight the adaptive rep-count loop: keep adding repetitions until
// the interval is tight relative to the mean, or a cap is hit. All of it is
// deterministic — every resample draw comes from an injected *rand.Rand
// (or a caller-chosen seed), never from global randomness — because the
// findings table is locked byte-for-byte by a golden test.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Interval is a two-sided confidence interval with its nominal coverage.
type Interval struct {
	Lo, Hi float64
	// Confidence is the nominal coverage level, e.g. 0.95.
	Confidence float64
}

// HalfWidth returns half the interval's width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// Contains reports whether x lies inside the closed interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Above reports whether the whole interval lies strictly above x.
func (iv Interval) Above(x float64) bool { return iv.Lo > x }

// Below reports whether the whole interval lies strictly below x.
func (iv Interval) Below(x float64) bool { return iv.Hi < x }

// String renders "[lo, hi]" compactly.
func (iv Interval) String() string { return fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi) }

// nanInterval is the degenerate answer for unusable samples.
func nanInterval(confidence float64) Interval {
	return Interval{Lo: math.NaN(), Hi: math.NaN(), Confidence: confidence}
}

// BootstrapCI returns the percentile bootstrap confidence interval of the
// mean of xs: resamples bootstrap means are drawn with replacement using
// rng, and the interval is the (α/2, 1−α/2) quantile pair. An empty sample
// yields a NaN interval; a single observation yields the degenerate
// [x, x].
func BootstrapCI(xs []float64, confidence float64, resamples int, rng *rand.Rand) Interval {
	means := bootstrapMeans(xs, resamples, rng)
	if means == nil {
		if len(xs) == 1 {
			return Interval{Lo: xs[0], Hi: xs[0], Confidence: confidence}
		}
		return nanInterval(confidence)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	return Interval{
		Lo:         quantileSorted(means, alpha),
		Hi:         quantileSorted(means, 1-alpha),
		Confidence: confidence,
	}
}

// BootstrapCIBCa returns the bias-corrected and accelerated (BCa)
// bootstrap confidence interval of the mean of xs (Efron 1987): the
// percentile endpoints are shifted by the bias correction z₀ (the normal
// quantile of the fraction of bootstrap means below the sample mean) and
// the acceleration a (from the jackknife skewness of the mean). For
// symmetric samples it agrees with BootstrapCI; for the skewed ratio
// distributions hypothesis effects follow it keeps the nominal coverage.
func BootstrapCIBCa(xs []float64, confidence float64, resamples int, rng *rand.Rand) Interval {
	means := bootstrapMeans(xs, resamples, rng)
	if means == nil {
		if len(xs) == 1 {
			return Interval{Lo: xs[0], Hi: xs[0], Confidence: confidence}
		}
		return nanInterval(confidence)
	}
	sort.Float64s(means)
	theta := mean(xs)
	if math.IsNaN(theta) {
		return nanInterval(confidence)
	}

	// Bias correction: the normal quantile of the proportion of bootstrap
	// means strictly below the observed mean, clamped away from 0 and 1 so
	// a degenerate (constant) bootstrap distribution cannot produce ±Inf.
	below := 0
	for _, m := range means {
		if m < theta {
			below++
		}
	}
	b := len(means)
	prop := (float64(below) + 0.5) / (float64(b) + 1)
	z0 := NormalQuantile(prop)

	// Acceleration: jackknife estimate from leave-one-out means.
	accel := jackknifeAcceleration(xs)

	alpha := (1 - confidence) / 2
	adj := func(z float64) float64 {
		num := z0 + z
		return NormalCDF(z0 + num/(1-accel*num))
	}
	lo := adj(NormalQuantile(alpha))
	hi := adj(NormalQuantile(1 - alpha))
	return Interval{
		Lo:         quantileSorted(means, lo),
		Hi:         quantileSorted(means, hi),
		Confidence: confidence,
	}
}

// RatioOfMeansCI is the paired effect-size helper: the ratio of the means
// of num over den (e.g. vanilla time over pinned time, paired by seed),
// with a percentile bootstrap interval obtained by resampling index pairs
// — the pairing is preserved, which is what keeps between-seed variance
// out of the interval. The slices must be the same non-zero length.
func RatioOfMeansCI(num, den []float64, confidence float64, resamples int, rng *rand.Rand) (float64, Interval, error) {
	if len(num) == 0 || len(num) != len(den) {
		return 0, nanInterval(confidence), fmt.Errorf("stats: ratio of means needs equal-length non-empty samples, got %d and %d", len(num), len(den))
	}
	dm := mean(den)
	if dm == 0 {
		return 0, nanInterval(confidence), fmt.Errorf("stats: ratio of means: denominator mean is zero")
	}
	ratio := mean(num) / dm
	if resamples <= 0 || rng == nil || len(num) == 1 {
		return ratio, Interval{Lo: ratio, Hi: ratio, Confidence: confidence}, nil
	}
	n := len(num)
	ratios := make([]float64, 0, resamples)
	for b := 0; b < resamples; b++ {
		var ns, ds float64
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			ns += num[j]
			ds += den[j]
		}
		if ds != 0 {
			ratios = append(ratios, ns/ds)
		}
	}
	if len(ratios) == 0 {
		return ratio, nanInterval(confidence), nil
	}
	sort.Float64s(ratios)
	alpha := (1 - confidence) / 2
	return ratio, Interval{
		Lo:         quantileSorted(ratios, alpha),
		Hi:         quantileSorted(ratios, 1-alpha),
		Confidence: confidence,
	}, nil
}

// TightOpts configures RunUntilTight.
type TightOpts struct {
	// Min and Max bound the sample count: Min samples are always drawn
	// (raised to 2 — one observation has no interval), then samples are
	// added until the interval is tight or Max is reached. Max below Min is
	// raised to Min.
	Min, Max int
	// RelTol is the target: stop once the interval half-width is at most
	// RelTol·|mean|. Zero (or a zero mean) means no early stop — run to Max.
	RelTol float64
	// Confidence is the interval's nominal coverage (default 0.95).
	Confidence float64
	// Resamples is the bootstrap resample count (default 1000).
	Resamples int
	// Seed seeds the bootstrap RNG. Every tightness check re-seeds, so the
	// stop decision — and therefore the sample count — is a pure function
	// of the observed values: reruns and replays take identical paths.
	Seed int64
}

func (o TightOpts) withDefaults() TightOpts {
	if o.Min < 2 {
		o.Min = 2
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.Resamples <= 0 {
		o.Resamples = 1000
	}
	return o
}

// RunUntilTight is the adaptive rep-count loop: it draws sample(0..Min-1),
// then keeps drawing while the bootstrap interval of the mean is wider
// than RelTol·|mean| and the count is below Max. It returns the values
// drawn and the final interval. A sample error aborts the loop and is
// returned with the values drawn so far.
func RunUntilTight(opts TightOpts, sample func(i int) (float64, error)) ([]float64, Interval, error) {
	opts = opts.withDefaults()
	values := make([]float64, 0, opts.Min)
	ci := nanInterval(opts.Confidence)
	for i := 0; i < opts.Max; i++ {
		v, err := sample(i)
		if err != nil {
			return values, ci, err
		}
		values = append(values, v)
		if len(values) < opts.Min {
			continue
		}
		rng := rand.New(rand.NewSource(opts.Seed))
		ci = BootstrapCI(values, opts.Confidence, opts.Resamples, rng)
		if opts.RelTol > 0 {
			if m := math.Abs(mean(values)); m > 0 && ci.HalfWidth() <= opts.RelTol*m {
				break
			}
		}
	}
	return values, ci, nil
}

// bootstrapMeans draws the bootstrap distribution of the mean, or nil when
// the sample or configuration cannot support one (empty or singleton
// sample, no resamples, no RNG).
func bootstrapMeans(xs []float64, resamples int, rng *rand.Rand) []float64 {
	n := len(xs)
	if n < 2 || resamples <= 0 || rng == nil {
		return nil
	}
	means := make([]float64, resamples)
	for b := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[rng.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	return means
}

// jackknifeAcceleration estimates the BCa acceleration constant from the
// skewness of the leave-one-out means. A sample whose jackknife variance
// vanishes (all values equal) has zero acceleration.
func jackknifeAcceleration(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	var total float64
	for _, x := range xs {
		total += x
	}
	loo := make([]float64, n)
	var looMean float64
	for i, x := range xs {
		loo[i] = (total - x) / float64(n-1)
		looMean += loo[i]
	}
	looMean /= float64(n)
	var num, den float64
	for _, m := range loo {
		d := looMean - m
		num += d * d * d
		den += d * d
	}
	if den == 0 {
		return 0
	}
	return num / (6 * math.Pow(den, 1.5))
}

// quantileSorted returns the q-th (0..1) quantile of a sorted sample by
// nearest rank, clamping out-of-range and NaN q to the extremes.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if math.IsNaN(q) || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// mean returns the arithmetic mean (NaN for an empty sample).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// NormalCDF is the standard normal cumulative distribution Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// normalQuantile coefficients: Acklam's rational approximation to the
// inverse standard normal CDF (relative error < 1.15e-9 over (0,1)).
var (
	nqA = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	nqB = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	nqC = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	nqD = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
)

// NormalQuantile is the inverse standard normal CDF Φ⁻¹(p). p outside
// (0, 1) returns ∓Inf; NaN propagates.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var q, r float64
	switch {
	case p < pLow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((nqC[0]*q+nqC[1])*q+nqC[2])*q+nqC[3])*q+nqC[4])*q + nqC[5]) /
			((((nqD[0]*q+nqD[1])*q+nqD[2])*q+nqD[3])*q + 1)
	case p > pHigh:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((nqC[0]*q+nqC[1])*q+nqC[2])*q+nqC[3])*q+nqC[4])*q + nqC[5]) /
			((((nqD[0]*q+nqD[1])*q+nqD[2])*q+nqD[3])*q + 1)
	default:
		q = p - 0.5
		r = q * q
		return (((((nqA[0]*r+nqA[1])*r+nqA[2])*r+nqA[3])*r+nqA[4])*r + nqA[5]) * q /
			(((((nqB[0]*r+nqB[1])*r+nqB[2])*r+nqB[3])*r+nqB[4])*r + 1)
	}
}
