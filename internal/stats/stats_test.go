package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("mean: %+v", s)
	}
	if math.Abs(s.Stddev-2.138) > 0.01 {
		t.Fatalf("stddev %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max: %+v", s)
	}
	// CI95 = t(7) × s/√8 = 2.365 × 2.138/2.828 ≈ 1.788
	if math.Abs(s.CI95-1.788) > 0.01 {
		t.Fatalf("ci95 %v", s.CI95)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.CI95 != 0 || s.Stddev != 0 {
		t.Fatalf("singleton: %+v", s)
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsNaN(TCritical95(1)) {
		t.Fatal("n=1 has no CI")
	}
	if TCritical95(2) != 12.706 {
		t.Fatal("df=1")
	}
	if TCritical95(21) != 2.086 {
		t.Fatal("df=20")
	}
	if TCritical95(500) != 1.96 {
		t.Fatal("large df must fall back to normal")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Fatal("ratio")
	}
	if !math.IsNaN(Ratio(4, 0)) {
		t.Fatal("zero baseline must be NaN")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if Median(xs) != 5 {
		t.Fatalf("median %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 9 {
		t.Fatal("percentile extremes")
	}
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 9 {
		t.Fatal("percentile clamping")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestOverlaps(t *testing.T) {
	a := Summary{Mean: 10, CI95: 1}
	b := Summary{Mean: 11.5, CI95: 1}
	if !Overlaps(a, b) {
		t.Fatal("CIs [9,11] and [10.5,12.5] overlap")
	}
	c := Summary{Mean: 20, CI95: 1}
	if Overlaps(a, c) {
		t.Fatal("distant CIs must not overlap")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Fatal(s.String())
	}
}

// Property: mean is bounded by min and max; stddev non-negative; sorting
// invariance of Median.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-6 || s.Mean > s.Max+1e-6 {
			return false
		}
		if s.Stddev < 0 {
			return false
		}
		med := Median(xs)
		return med >= s.Min && med <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Percentiles must agree with per-call Percentile while sorting only once,
// leave the input untouched, and handle empty/degenerate inputs.
func TestPercentilesMultiHelper(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8, 6, 4, 0}
	orig := append([]float64(nil), xs...)
	ps := []float64{0, 25, 50, 90, 95, 99, 100, 150, -5}
	got := Percentiles(xs, ps...)
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Fatalf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Percentiles must not mutate its input")
		}
	}
	if out := Percentiles(nil, 50, 99); out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty sample percentiles %v", out)
	}
	if out := Percentiles(xs); len(out) != 0 {
		t.Fatalf("no requested quantiles must yield empty, got %v", out)
	}
}

// The Sorted variants must match their copying counterparts on sorted input.
func TestSortedVariantsMatch(t *testing.T) {
	for _, xs := range [][]float64{{4}, {2, 1}, {5, 3, 1}, {8, 6, 4, 2, 0, 9, 7, 5, 3, 1}} {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if MedianSorted(sorted) != Median(xs) {
			t.Fatalf("MedianSorted(%v) != Median", xs)
		}
		for _, p := range []float64{0, 10, 50, 90, 100} {
			if PercentileSorted(sorted, p) != Percentile(xs, p) {
				t.Fatalf("PercentileSorted(%v, %v) != Percentile", xs, p)
			}
		}
	}
	if MedianSorted(nil) != 0 || PercentileSorted(nil, 50) != 0 {
		t.Fatal("empty sorted samples must yield 0")
	}
}
