// Package stats provides the summary statistics the paper reports: means,
// 95% confidence intervals (Student's t), and overhead ratios relative to
// the bare-metal baseline.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95 float64
	Min  float64
	Max  float64
}

// two-sided 97.5% quantiles of Student's t for df = 1..30; beyond 30 the
// normal approximation (1.96) is used.
var tTable = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% t critical value for n samples.
func TCritical95(n int) float64 {
	df := n - 1
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(tTable) {
		return tTable[df-1]
	}
	return 1.96
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = TCritical95(s.N) * s.Stddev / math.Sqrt(float64(s.N))
	}
	return s
}

// Ratio is the paper's overhead ratio: this platform's mean execution time
// over the bare-metal mean. Returns NaN if baseline is non-positive.
func Ratio(mean, baseline float64) float64 {
	if baseline <= 0 {
		return math.NaN()
	}
	return mean / baseline
}

// Median returns the sample median (0 for an empty sample).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return MedianSorted(c)
}

// MedianSorted returns the median of an already-sorted sample without
// copying or re-sorting it.
func MedianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
//
// Each call copies and sorts the sample; callers that need several
// quantiles of the same sample should use Percentiles (one sort) or sort
// once themselves and use PercentileSorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return PercentileSorted(c, p)
}

// PercentileSorted returns the p-th nearest-rank percentile of an
// already-sorted sample without copying or re-sorting it.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// A NaN percentile would sail through both range clamps (every NaN
	// comparison is false) and turn into an implementation-defined int
	// conversion — historically an out-of-range index panic. There is no
	// meaningful rank for it; answer in kind.
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Percentiles returns the nearest-rank percentiles of xs for every p in
// ps, copying and sorting the sample exactly once. This is the helper the
// report paths use for "median / p95 / p99 / max" style summary lines,
// which previously re-copied and re-sorted per quantile.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 || len(ps) == 0 {
		return out
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	for i, p := range ps {
		out[i] = PercentileSorted(c, p)
	}
	return out
}

// Overlaps reports whether two 95% CIs overlap — the paper's "no
// statistically significant difference" criterion (Fig 7 discussion).
func Overlaps(a, b Summary) bool {
	return math.Abs(a.Mean-b.Mean) <= a.CI95+b.CI95
}

// String renders "mean ± ci" compactly.
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95, s.N)
}
