package stats

// Property tests for the resampling backbone: the invariants the hypothesis
// harness leans on (determinism, interval sanity, adaptive-stop behavior)
// checked across many seeded random samples rather than one fixture.

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// sampleNormal draws n pseudo-normal values (sum of 12 uniforms, shifted).
func sampleNormal(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		var s float64
		for k := 0; k < 12; k++ {
			s += rng.Float64()
		}
		xs[i] = mu + sigma*(s-6)
	}
	return xs
}

func TestBootstrapCIContainsSampleMean(t *testing.T) {
	src := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 3 + src.Intn(30)
		xs := sampleNormal(src, n, 10+src.Float64()*5, 0.5+src.Float64())
		m := mean(xs)
		rng := rand.New(rand.NewSource(int64(trial)))
		ci := BootstrapCI(xs, 0.95, 2000, rng)
		if !ci.Contains(m) {
			t.Fatalf("trial %d: percentile CI %v does not contain sample mean %v (n=%d)", trial, ci, m, n)
		}
		if ci.Lo > ci.Hi {
			t.Fatalf("trial %d: inverted interval %v", trial, ci)
		}
		// Both interval kinds stay inside the sample's range: a bootstrap
		// mean can never leave [min, max] of the data.
		s := Summarize(xs)
		bca := BootstrapCIBCa(xs, 0.95, 2000, rand.New(rand.NewSource(int64(trial))))
		for _, iv := range []Interval{ci, bca} {
			if iv.Lo < s.Min || iv.Hi > s.Max {
				t.Fatalf("trial %d: interval %v outside data range [%v, %v]", trial, iv, s.Min, s.Max)
			}
		}
	}
}

func TestBootstrapCIShrinksWithN(t *testing.T) {
	// Wider samples from the same distribution give tighter intervals of the
	// mean. Compare averaged half-widths over several draws so the property
	// is about the estimator, not one lucky sample.
	src := rand.New(rand.NewSource(2))
	width := func(n int) float64 {
		var total float64
		const draws = 20
		for d := 0; d < draws; d++ {
			xs := sampleNormal(src, n, 20, 2)
			ci := BootstrapCI(xs, 0.95, 1000, rand.New(rand.NewSource(int64(d))))
			total += ci.HalfWidth()
		}
		return total / draws
	}
	small, large := width(5), width(40)
	if large >= small {
		t.Fatalf("mean half-width did not shrink: n=5 gives %v, n=40 gives %v", small, large)
	}
}

func TestBootstrapCIDeterministicForSeed(t *testing.T) {
	xs := sampleNormal(rand.New(rand.NewSource(3)), 12, 5, 1)
	a := BootstrapCI(xs, 0.95, 1000, rand.New(rand.NewSource(99)))
	b := BootstrapCI(xs, 0.95, 1000, rand.New(rand.NewSource(99)))
	if a != b {
		t.Fatalf("same seed, different intervals: %v vs %v", a, b)
	}
	ba := BootstrapCIBCa(xs, 0.95, 1000, rand.New(rand.NewSource(99)))
	bb := BootstrapCIBCa(xs, 0.95, 1000, rand.New(rand.NewSource(99)))
	if ba != bb {
		t.Fatalf("same seed, different BCa intervals: %v vs %v", ba, bb)
	}
	c := BootstrapCI(xs, 0.95, 1000, rand.New(rand.NewSource(100)))
	if a == c {
		t.Fatalf("different seeds produced identical intervals %v — RNG not injected?", a)
	}
}

func TestBootstrapDegenerateSamples(t *testing.T) {
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	if ci := BootstrapCI(nil, 0.95, 100, rng()); !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
		t.Fatalf("empty sample: %v, want NaN interval", ci)
	}
	if ci := BootstrapCI([]float64{4.2}, 0.95, 100, rng()); ci.Lo != 4.2 || ci.Hi != 4.2 {
		t.Fatalf("singleton sample: %v, want [4.2, 4.2]", ci)
	}
	// A constant sample has a point-mass bootstrap distribution; BCa's bias
	// clamp must keep the interval finite.
	xs := []float64{3, 3, 3, 3, 3}
	ci := BootstrapCIBCa(xs, 0.95, 500, rng())
	if ci.Lo != 3 || ci.Hi != 3 {
		t.Fatalf("constant sample BCa: %v, want [3, 3]", ci)
	}
}

func TestRatioOfMeansCI(t *testing.T) {
	num := []float64{2, 2.2, 1.9, 2.1}
	den := []float64{1, 1.1, 0.95, 1.05}
	ratio, ci, err := RatioOfMeansCI(num, den, 0.95, 2000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	want := mean(num) / mean(den)
	if ratio != want {
		t.Fatalf("ratio = %v, want %v", ratio, want)
	}
	if !ci.Contains(ratio) {
		t.Fatalf("interval %v does not contain the point estimate %v", ci, ratio)
	}
	if _, _, err := RatioOfMeansCI(num, den[:2], 0.95, 100, rand.New(rand.NewSource(7))); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := RatioOfMeansCI([]float64{1}, []float64{0}, 0.95, 100, rand.New(rand.NewSource(7))); err == nil {
		t.Fatal("zero denominator mean accepted")
	}
}

func TestRunUntilTightStopsEarlyOnTightSample(t *testing.T) {
	// A constant sample is tight after Min draws: no extra samples.
	calls := 0
	values, ci, err := RunUntilTight(TightOpts{Min: 4, Max: 100, RelTol: 0.05, Seed: 1},
		func(i int) (float64, error) { calls++; return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || len(values) != 4 {
		t.Fatalf("constant sample drew %d samples (%d values), want 4", calls, len(values))
	}
	if ci.HalfWidth() != 0 {
		t.Fatalf("constant sample interval %v, want zero width", ci)
	}
}

func TestRunUntilTightRespectsCap(t *testing.T) {
	// A wildly-dispersed alternating sample can never satisfy a 1% relative
	// tolerance: the loop must stop exactly at Max.
	calls := 0
	values, _, err := RunUntilTight(TightOpts{Min: 2, Max: 9, RelTol: 0.01, Seed: 1},
		func(i int) (float64, error) {
			calls++
			if i%2 == 0 {
				return 1, nil
			}
			return 100, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 9 || len(values) != 9 {
		t.Fatalf("dispersed sample drew %d samples (%d values), want cap 9", calls, len(values))
	}
}

func TestRunUntilTightDeterministicStop(t *testing.T) {
	// The stop decision is a pure function of the observed values: the same
	// value stream yields the same count and interval on every run.
	mk := func() func(int) (float64, error) {
		rng := rand.New(rand.NewSource(11))
		return func(i int) (float64, error) { return 50 + rng.Float64(), nil }
	}
	opts := TightOpts{Min: 3, Max: 50, RelTol: 0.002, Seed: 21}
	v1, ci1, err1 := RunUntilTight(opts, mk())
	v2, ci2, err2 := RunUntilTight(opts, mk())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(v1) != len(v2) || ci1 != ci2 {
		t.Fatalf("rerun diverged: %d values %v vs %d values %v", len(v1), ci1, len(v2), ci2)
	}
	if len(v1) <= 3 || len(v1) >= 50 {
		t.Fatalf("expected an interior adaptive stop, got %d values", len(v1))
	}
}

func TestRunUntilTightPropagatesSampleError(t *testing.T) {
	wantErr := errors.New("simulated trial failure")
	values, _, err := RunUntilTight(TightOpts{Min: 2, Max: 10, Seed: 1},
		func(i int) (float64, error) {
			if i == 3 {
				return 0, wantErr
			}
			return float64(i), nil
		})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if len(values) != 3 {
		t.Fatalf("kept %d values before the error, want 3", len(values))
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-8 {
			t.Fatalf("Φ(Φ⁻¹(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("NormalQuantile must saturate to ∓Inf at the boundaries")
	}
	if !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Fatal("NormalQuantile(NaN) must propagate NaN")
	}
}
