// Package pinning reproduces "The Art of CPU-Pinning: Evaluating and
// Improving the Performance of Virtualization and Containerization
// Platforms" (GhatrehSamani, Denninnart, Bacik, Amini Salehi — ICPP 2020).
//
// It bundles three things:
//
//   - a discrete-event model of the paper's testbed — CFS scheduling,
//     cgroup quota/cpuset provisioning, IRQ/IO affinity, a KVM-style
//     hypervisor overlay — able to regenerate every figure and table of the
//     paper's evaluation (see cmd/pinsim and the Benchmark* functions);
//
//   - the paper's actionable findings as a library: application
//     classification, PTO/PSO overhead decomposition, CHR bands and the
//     best-practice Advisor;
//
//   - the real operational mechanics of pinning on Linux: sched_setaffinity
//     wrappers, a Docker Engine API client for --cpus / --cpuset-cpus, and
//     libvirt <cputune> generation (see cmd/pinctl and cmd/pinbench).
//
// This facade re-exports the stable surface of the internal packages.
package pinning

import (
	"repro/internal/core"
	"repro/internal/cpumanager"
	"repro/internal/experiments"
	"repro/internal/grubconf"
	"repro/internal/hypotheses"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Re-exported core types: the paper's contribution as an API.
type (
	// AppClass is the paper's application taxonomy (Table I).
	AppClass = core.AppClass
	// Profile describes an application for the Advisor.
	Profile = core.Profile
	// Recommendation is the Advisor's output.
	Recommendation = core.Recommendation
	// CHRBand is a recommended Container-to-Host core Ratio range (§IV-A).
	CHRBand = core.CHRBand

	// Topology describes a host (sockets × cores × SMT threads).
	Topology = topology.Topology
	// CPUSet is a set of logical CPUs (affinity masks, cpusets, pin plans).
	CPUSet = topology.CPUSet

	// PlatformKind is one of the four execution platforms (Table III).
	PlatformKind = platform.Kind
	// Mode is the CPU-provisioning mode (§II-D).
	Mode = platform.Mode
	// PlatformSpec is a deployable (kind, mode, cores) combination — the
	// series axis of figures and sweeps.
	PlatformSpec = platform.Spec
	// PlatformStack is the composable deployment form: host, nested guests,
	// cgroups and co-located tenants (Spec.Stack() gives the canned four).
	PlatformStack = platform.Stack
	// PlatformLayer is one level of a PlatformStack.
	PlatformLayer = platform.Layer
	// TenantSpec describes one of several co-located deployments sharing
	// the machine a stack produces.
	TenantSpec = platform.TenantSpec

	// ExperimentConfig controls figure regeneration, including the parallel
	// trial fan-out (Workers), per-trial memoization (Memo) and the
	// long-run progress callback (Progress).
	ExperimentConfig = experiments.Config
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure

	// Scenario is a declarative experiment: series (platform stacks,
	// possibly multi-tenant) × cells (host, size, workload parameters),
	// run by RunScenario and registrable for name dispatch.
	Scenario = experiments.Scenario
	// ScenarioSeries is one legend entry of a Scenario.
	ScenarioSeries = experiments.ScenarioSeries
	// ScenarioCell is one x-axis point of a Scenario.
	ScenarioCell = experiments.ScenarioCell
	// WorkloadSpec names a workload driver plus parameter overrides.
	WorkloadSpec = experiments.WorkloadSpec

	// SweepSpec defines an arbitrary experiment grid — platforms × CHR
	// points × workloads × memory sizes — beyond the paper's fixed figures.
	SweepSpec = experiments.SweepSpec
	// SweepResult is a completed sweep (one aggregated cell per grid point).
	SweepResult = experiments.SweepResult
	// SweepCell is one grid point of a sweep.
	SweepCell = experiments.SweepCell
	// TrialResult is the memoizable outcome of one simulated trial.
	TrialResult = experiments.TrialResult
	// TrialStore is the pluggable trial-result store behind
	// ExperimentConfig.Memo: the in-memory memo, or a durable disk-backed
	// store (OpenTrialStore) whose results survive the process and merge
	// across shard runs.
	TrialStore = experiments.TrialStore
	// TrialMemo is the in-memory TrialStore tier; share one via
	// ExperimentConfig.Memo to skip already-simulated cells.
	TrialMemo = experiments.TrialMemo
	// StoreStats is a TrialStore's counter snapshot: hits, misses
	// (= simulations executed), records loaded/appended, corrupt records
	// skipped, bytes on disk, and the robustness counters (retries,
	// recoveries, degraded mode, unpersisted results, warnings).
	StoreStats = resultstore.Stats
	// StoreOption configures OpenTrialStore — e.g. StoreDegradedFallback
	// to run memory-only on an unusable store directory instead of failing.
	StoreOption = resultstore.Option

	// TrialExecutor is the pluggable trial-execution strategy behind
	// ExperimentConfig.Executor.
	TrialExecutor = experiments.Executor
	// SerialExecutor runs every trial on the calling goroutine.
	SerialExecutor = experiments.Serial
	// PoolExecutor fans trials across an atomic-claim worker pool (the
	// default, sized by ExperimentConfig.Workers).
	PoolExecutor = experiments.Pool
	// ShardExecutor deterministically partitions every trial grid so one
	// experiment can run across N machines whose durable stores are merged
	// afterwards (MergeTrialStores).
	ShardExecutor = experiments.Shard
	// TrialPanicsError is PoolExecutor's end-of-sweep report of trials that
	// panicked on both their run and the containment retry: the sweep
	// completed, only the listed trials' cells are missing.
	TrialPanicsError = experiments.TrialPanicsError
	// TrialPanic is one contained trial panic inside a TrialPanicsError.
	TrialPanic = experiments.TrialPanic

	// Hypothesis is one falsifiable claim over a registered scenario: a
	// predicate reduces each per-seed scenario run to a scalar effect, and
	// the effect sample's bootstrap interval is judged against a null
	// boundary (see cmd/pinhyp and hypotheses/README.md).
	Hypothesis = hypotheses.Hypothesis
	// HypothesisPredicate extracts a hypothesis's scalar effect from a
	// figure and states its null boundary and claimed direction.
	HypothesisPredicate = hypotheses.Predicate
	// HypothesisConfig controls a hypothesis run (seed, quick mode, trial
	// fan-out, trial store, resample count).
	HypothesisConfig = hypotheses.Config
	// HypothesisFinding is one evaluated hypothesis: status, mean effect,
	// bootstrap interval, seeds drawn.
	HypothesisFinding = hypotheses.Finding
	// BootstrapInterval is a two-sided confidence interval with its nominal
	// coverage (see BootstrapCI / BootstrapCIBCa in internal/stats).
	BootstrapInterval = stats.Interval

	// OverheadModel is the fitted §VI analytic law R = PTO + A·exp(−CHR/τ).
	OverheadModel = model.Model
	// OverheadSample is one measured (platform, mode, class, CHR, ratio)
	// point for fitting.
	OverheadSample = model.Sample
	// IsolationLevel ranks platforms by the isolation they provide.
	IsolationLevel = model.IsolationLevel
	// ModelConstraints narrow a model-driven recommendation.
	ModelConstraints = model.Constraints
	// ModelChoice is one ranked candidate from the model's Recommend.
	ModelChoice = model.Choice

	// CPUManager hands out exclusive topology-aligned cpusets
	// (Kubernetes-style static policy with IO-affinity placement).
	CPUManager = cpumanager.Manager
	// CPURequest asks the CPUManager for an exclusive cpuset.
	CPURequest = cpumanager.Request

	// GrubConfig is a bare-metal CPU provisioning plan (kernel cmdline).
	GrubConfig = grubconf.Config

	// TraceCollector gathers the BCC-analog instruments (cpudist,
	// offcputime, runqlat) from a simulated run.
	TraceCollector = trace.Collector
	// ProfileSpec selects a deployment for BCC-style profiling.
	ProfileSpec = experiments.ProfileSpec

	// AdvisorServer is the always-on pinning-advisor daemon's http.Handler
	// (cmd/pinservd): POST /run serves figures and recommendations from a
	// sharded response cache with singleflight coalescing and admission
	// control. Build with NewAdvisorServer.
	AdvisorServer = serve.Server
	// AdvisorOptions configures an AdvisorServer (run template, simulation
	// bound, queue depth, Retry-After hint).
	AdvisorOptions = serve.Options
	// AdvisorRequest and AdvisorResponse are the POST /run wire shapes.
	AdvisorRequest  = serve.RunRequest
	AdvisorResponse = serve.RunResponse
	// LoadtestOptions and LoadtestReport drive the serving-throughput
	// harness behind pinservd -selftest and the CI serving gate.
	LoadtestOptions = loadtest.Options
	LoadtestReport  = loadtest.Report
)

// Application classes.
const (
	CPUBound     = core.CPUBound
	Parallel     = core.Parallel
	IOBound      = core.IOBound
	UltraIOBound = core.UltraIOBound
)

// Execution platforms (Table III).
const (
	BM   = platform.BM
	VM   = platform.VM
	CN   = platform.CN
	VMCN = platform.VMCN
)

// Provisioning modes (§II-D).
const (
	Vanilla = platform.Vanilla
	Pinned  = platform.Pinned
)

// PaperHost returns the paper's evaluation host: 4-socket, 112 logical
// CPUs (DELL R830, Table II's substrate).
func PaperHost() *Topology { return topology.PaperHost() }

// SmallHost16 returns the 16-core host of the Fig 7 CHR experiment.
func SmallHost16() *Topology { return topology.SmallHost16() }

// Classify maps an application profile onto the paper's taxonomy.
func Classify(p Profile) AppClass { return core.Classify(p) }

// Advise applies the paper's §VI best practices to a profile on a host.
func Advise(p Profile, host *Topology) Recommendation { return core.Advise(p, host) }

// CHR computes the Container-to-Host core Ratio (§IV-A).
func CHR(containerCores int, host *Topology) float64 { return core.CHR(containerCores, host) }

// RecommendedCHR returns best-practice #5's CHR band for a class.
func RecommendedCHR(class AppClass) CHRBand { return core.RecommendedCHR(class) }

// RunFigure regenerates paper figure n (3..8) from the simulator.
func RunFigure(n int, cfg ExperimentConfig) (Figure, error) { return experiments.RunFigure(n, cfg) }

// RunScenario executes a declarative scenario through the parallel trial
// runner; output is bit-identical at any worker count.
func RunScenario(sc Scenario, cfg ExperimentConfig) (Figure, error) {
	return experiments.RunScenario(cfg, sc)
}

// RunNamedScenario runs a registered scenario ("fig3".."fig8",
// "fig6-large", "net", or anything added via RegisterScenario); unknown
// names fail with the sorted registry listing.
func RunNamedScenario(name string, cfg ExperimentConfig) (Figure, error) {
	return experiments.RunRegistered(name, cfg)
}

// RegisterScenario adds a user-defined scenario to the name registry.
func RegisterScenario(sc Scenario) error { return experiments.RegisterScenario(sc) }

// ScenarioNames lists every registered scenario, sorted.
func ScenarioNames() []string { return experiments.ScenarioNames() }

// LoadScenario reads a scenario from a JSON spec file (the `pinsim
// -scenario` format).
func LoadScenario(path string) (Scenario, error) { return experiments.LoadScenario(path) }

// RunSweep runs a user-defined experiment grid through the parallel trial
// runner (see cmd/pinsweep for the CLI form). Results are deterministic for
// any ExperimentConfig.Workers setting.
func RunSweep(spec SweepSpec, cfg ExperimentConfig) (*SweepResult, error) {
	return experiments.Sweep(cfg, spec)
}

// NewTrialMemo returns an empty in-memory trial store for
// ExperimentConfig.Memo.
func NewTrialMemo() *TrialMemo { return experiments.NewTrialMemo() }

// OpenTrialStore opens (creating if needed) the durable trial store at dir
// for ExperimentConfig.Memo: intact records load at open, newly-simulated
// trials append, so repeated runs are incremental across processes.
// Corrupt or stale-schema records are skipped with a warning and
// recomputed — never replayed wrong. An unusable directory fails fast
// unless StoreDegradedFallback is passed. Close the store to flush.
func OpenTrialStore(dir string, opts ...StoreOption) (TrialStore, error) {
	return experiments.OpenTrialStore(dir, opts...)
}

// StoreDegradedFallback makes OpenTrialStore treat an unusable store
// directory as a degraded in-memory store (one warning, results do not
// persist) instead of an error — the library form of the CLIs'
// -store-degraded=allow.
func StoreDegradedFallback() StoreOption { return resultstore.WithDegradedFallback(true) }

// MergeTrialStores loads every intact record of the trial stores at dirs
// into dst — the assembly step after sharded runs (ShardExecutor, or the
// CLIs' -shard/-store flags) have each persisted their grid partition.
func MergeTrialStores(dst TrialStore, dirs ...string) error {
	return experiments.MergeTrialStores(dst, dirs...)
}

// Claimed directions for HypothesisPredicate.Direction.
const (
	// HypothesisAbove claims the effect lies above the null boundary.
	HypothesisAbove = hypotheses.Above
	// HypothesisBelow claims the effect lies below the null boundary.
	HypothesisBelow = hypotheses.Below
)

// HypothesisCellMean extracts one (series, x-label) cell mean from a
// figure — the building block of hypothesis predicates. Missing cells are
// an error, never a silent zero.
func HypothesisCellMean(f Figure, series, x string) (float64, error) {
	return hypotheses.CellMean(f, series, x)
}

// HypothesisCellRatio is the ratio of two series' cell means at the same
// x-label (e.g. vanilla over pinned).
func HypothesisCellRatio(f Figure, numSeries, denSeries, x string) (float64, error) {
	return hypotheses.CellRatio(f, numSeries, denSeries, x)
}

// RunHypothesis evaluates one falsifiable claim: its scenario runs across
// adaptively-many seeds and the effect's BCa bootstrap interval decides
// Confirmed/Refuted/Inconclusive.
func RunHypothesis(h Hypothesis, cfg HypothesisConfig) (HypothesisFinding, error) {
	return hypotheses.Run(h, cfg)
}

// RunAllHypotheses evaluates every registered hypothesis in sorted-name
// order (the committed hypotheses/FINDINGS.md is this, rendered).
func RunAllHypotheses(cfg HypothesisConfig) ([]HypothesisFinding, error) {
	return hypotheses.RunAll(cfg)
}

// RegisterHypothesis adds a user-defined hypothesis to the name registry.
func RegisterHypothesis(h Hypothesis) error { return hypotheses.Register(h) }

// HypothesisNames lists every registered hypothesis, sorted.
func HypothesisNames() []string { return hypotheses.Names() }

// ParseCPUList parses Linux cpu-list syntax ("0-3,8,10-11").
func ParseCPUList(list string) (CPUSet, error) { return topology.ParseList(list) }

// FitOverheadModel regenerates the given figures (3..6) and fits the §VI
// analytic overhead law on their cells.
func FitOverheadModel(figs []int, cfg ExperimentConfig) (*OverheadModel, error) {
	return experiments.FitModel(figs, cfg)
}

// FitSamples fits the analytic law directly on measured samples (simulator
// output or a real testbed's numbers).
func FitSamples(samples []OverheadSample) (*OverheadModel, error) { return model.Fit(samples) }

// Isolation returns a platform's isolation level (§VI: overhead grows with
// it for CPU-bound work).
func Isolation(k PlatformKind) IsolationLevel { return model.Isolation(k) }

// NewCPUManager returns a static-policy CPU manager for a host; reserved
// CPUs are never handed out.
func NewCPUManager(host *Topology, reserved CPUSet) (*CPUManager, error) {
	return cpumanager.New(host, reserved)
}

// GrubForInstance returns the §III-A bare-metal provisioning (maxcpus=) for
// an instance size.
func GrubForInstance(host *Topology, cores int) (GrubConfig, error) {
	return grubconf.ForInstance(host, cores)
}

// GrubIsolate returns the isolcpus/nohz_full/rcu_nocbs recipe for an
// exclusively-owned cpuset.
func GrubIsolate(host *Topology, set CPUSet) (GrubConfig, error) {
	return grubconf.IsolateFor(host, set)
}

// RunProfile runs one deployment with the BCC-analog instruments attached
// (the paper's §III-A methodology) and returns the collector.
func RunProfile(spec ProfileSpec, cfg ExperimentConfig) (*TraceCollector, float64, error) {
	res, err := experiments.RunProfile(spec, cfg)
	if err != nil {
		return nil, 0, err
	}
	return res.Collector, res.MetricSecs, nil
}

// NewAdvisorServer builds the pinning-advisor daemon's handler around the
// given run template and admission bounds; serve it with net/http.
func NewAdvisorServer(o AdvisorOptions) *AdvisorServer { return serve.NewServer(o) }

// RunLoadtest hammers one serving endpoint with keep-alive connections and
// reports throughput plus measured latency percentiles.
func RunLoadtest(o LoadtestOptions) (LoadtestReport, error) { return loadtest.Run(o) }
