// Quickstart: simulate the paper's CPU-bound workload (FFmpeg) on a small
// container, vanilla vs pinned, on the paper's 112-CPU host — the minimal
// end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	host := topology.PaperHost()
	fmt.Println("host:", host)

	w := workload.DefaultTranscode()
	fmt.Printf("workload: %s (%.0f core-seconds, %d threads)\n\n",
		w.Name(), (w.TotalWork + w.PerProcessOverhead).Seconds(), w.Threads)

	baseline := run(host, platform.Spec{Kind: platform.BM, Mode: platform.Vanilla, Cores: 2}, w)
	fmt.Printf("%-14s %8.2fs\n", "bare metal", baseline)

	for _, mode := range []platform.Mode{platform.Vanilla, platform.Pinned} {
		spec := platform.Spec{Kind: platform.CN, Mode: mode, Cores: 2}
		secs := run(host, spec, w)
		fmt.Printf("%-14s %8.2fs   overhead ratio %.2fx\n", spec.Label(), secs, secs/baseline)
	}
	fmt.Println("\nFinding (paper §VI, best practice 2): pinning removes the small")
	fmt.Println("container's scheduling + cgroup overhead for CPU-bound work.")
}

func run(host *topology.Topology, spec platform.Spec, w workload.Workload) float64 {
	d, err := platform.Deploy(spec, machine.HostDefaults(host, 42), hypervisor.DefaultParams(), 42)
	if err != nil {
		log.Fatal(err)
	}
	inst := w.Spawn(workload.EnvFor(d.M, d.Group, d.Affinity, spec.Cores))
	return inst.Metric(d.M.Run(0))
}
