// Modelfit: the paper's §VI future work as a decision procedure. Fits the
// analytic overhead law R(CHR) = PTO + A·exp(−CHR/τ) on freshly simulated
// evaluation figures, prints the fitted curves, and then answers three
// deployment questions a solution architect would actually ask — each under
// a different operational constraint.
//
//	go run ./examples/modelfit
package main

import (
	"fmt"
	"log"
	"os"

	pinning "repro"
)

func main() {
	fmt.Println("fitting the overhead law on simulated Fig 3 (CPU) + Fig 5 (IO) cells...")
	m, err := pinning.FitOverheadModel([]int{3, 5}, pinning.ExperimentConfig{
		Quick: true, Reps: 2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	host := pinning.PaperHost()
	fmt.Println()
	m.Render(os.Stdout, host.NumCPUs())

	ask := func(title string, class pinning.AppClass, cores int, c pinning.ModelConstraints) {
		chr := pinning.CHR(cores, host)
		fmt.Printf("\n%s (class %v, %d cores, CHR %.2f):\n", title, class, cores, chr)
		ranked, err := m.Recommend(class, chr, c)
		if err != nil {
			fmt.Println("  no viable deployment:", err)
			return
		}
		for i, choice := range ranked {
			marker := "  "
			if i == 0 {
				marker = "→ "
			}
			fmt.Printf("%s%-22s predicted ratio %.2f (isolation: %v)\n",
				marker, choice.Key, choice.Predicted, pinning.Isolation(choice.Key.Platform))
		}
	}

	// 1. A web tier where the operator may pin freely.
	ask("web tier, pinning allowed", pinning.IOBound, 16,
		pinning.ModelConstraints{AllowPinning: true})

	// 2. The same tier under a no-pinning operations policy (§I: extensive
	// pinning makes host management harder) — best practice 4 territory.
	ask("web tier, pinning ruled out", pinning.IOBound, 4,
		pinning.ModelConstraints{AllowPinning: false})

	// 3. An untrusted tenant's transcoder: a hardware boundary is mandatory,
	// so the flat VM tax is the price of isolation.
	ask("untrusted CPU-bound tenant", pinning.CPUBound, 16,
		pinning.ModelConstraints{AllowPinning: true, MinIsolation: 2})

	fmt.Println("\nThe rule-based advisor (core.Advise) encodes the paper's conclusions;")
	fmt.Println("this model reads the same conclusions off fitted measurement data and")
	fmt.Println("adapts automatically when refitted on a different testbed's numbers.")
}
