// Cpumanager: automated pinning with a Kubernetes-style static CPU-manager
// policy — the operational answer to the paper's best practices. A node agent
// receives four pods (the paper's four application types), carves exclusive
// topology-aligned cpusets for them (IO pods near the disk IRQ home, §III-B3),
// and then demonstrates the payoff by running the NoSQL pod both ways:
// floating on a CFS quota (vanilla) versus pinned to its allocation.
//
//	go run ./examples/cpumanager [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/container"
	"repro/internal/cpumanager"
	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	reps := flag.Int("reps", 3, "repetitions of the payoff measurement")
	flag.Parse()

	host := topology.PaperHost()
	// Reserve CPU 0 for system daemons and IRQ threads, as kubelet's
	// --reserved-cpus would.
	mgr, err := cpumanager.New(host, topology.NewCPUSet(0))
	if err != nil {
		log.Fatal(err)
	}

	// Discover the disk IRQ home from a reference machine so the IO pods are
	// packed onto that socket (the paper's IO-affinity pinning).
	ref := machine.MustNew(machine.HostDefaults(host, 1))
	diskHome := ref.IRQ.Channel(irqsim.ChanDisk).Home

	pods := []cpumanager.Request{
		{Name: "cassandra", CPUs: 32, NearCPU: diskHome}, // ultra IO: CHR 0.28..0.57
		{Name: "wordpress", CPUs: 16, NearCPU: diskHome}, // IO: CHR 0.14..0.28
		{Name: "ffmpeg", CPUs: 16, NearCPU: -1},          // CPU-bound: CHR 0.07..0.14
		{Name: "mpi", CPUs: 8, NearCPU: -1},
	}

	fmt.Printf("node: %s (CPU 0 reserved, disk IRQ home on cpu %d)\n\n", host, diskHome)
	fmt.Printf("%-11s %-5s %-9s %s\n", "pod", "cpus", "sockets", "cpuset")
	allocations := map[string]topology.CPUSet{}
	for _, p := range pods {
		set, err := mgr.Allocate(p)
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		allocations[p.Name] = set
		fmt.Printf("%-11s %-5d %-9d %v\n", p.Name, p.CPUs, host.SocketsSpanned(set), set)
	}
	fmt.Printf("%-11s %-5d %-9s %v\n\n", "(shared)", mgr.SharedPool().Count(), "-", mgr.SharedPool())

	// Payoff: the Cassandra pod, quota-floating vs pinned to (a subset of)
	// its allocation, at two sizes. Per Fig 6, pinning wins decisively at
	// 4xLarge (16 cores) and the benefit fades by 8xLarge (32 cores).
	w := workload.DefaultNoSQL()
	measure := func(cores int, pinned bool) stats.Summary {
		var vals []float64
		for r := 0; r < *reps; r++ {
			m := machine.MustNew(machine.HostDefaults(host, uint64(100+r)))
			var cn *container.Container
			var err error
			if pinned {
				set := allocations["cassandra"].TakeLowest(cores)
				cn, err = container.CreatePinnedSet(m, "cassandra", set)
			} else {
				cn, err = container.Create(m, container.Spec{Name: "cassandra", Cores: cores})
			}
			if err != nil {
				log.Fatal(err)
			}
			inst := w.Spawn(workload.EnvFor(m, cn.Group, topology.CPUSet{}, cores))
			vals = append(vals, inst.Metric(m.Run(0)))
		}
		return stats.Summarize(vals)
	}

	fmt.Printf("cassandra pod, %d ops, %d reps:\n", w.Ops, *reps)
	for _, cores := range []int{16, 32} {
		vanilla := measure(cores, false)
		pinned := measure(cores, true)
		delta := (1 - pinned.Mean/vanilla.Mean) * 100
		fmt.Printf("  %2d cores: vanilla %7.3fs ± %-6.3f pinned %7.3fs ± %-6.3f (pinning saves %5.1f%%)\n",
			cores, vanilla.Mean, vanilla.CI95, pinned.Mean, pinned.CI95, delta)
	}
	fmt.Println("\nPaper §VI: pin IO-intensive containers (BP 2/4) and give them a")
	fmt.Println("large-enough CHR (BP 5); the static policy automates both. Fig 6:")
	fmt.Println("the pinning benefit is large at 16 cores and fades by 32.")
}
