// Serve: the always-on pinning advisor, end to end in one process. Boots
// the daemon's engine on a loopback listener, asks it a question three
// ways — cold (simulated), again (warm, byte-identical), and as a
// thundering herd (coalesced onto one simulation) — then pulls the
// /statsz audit and a model-fit recommendation. The same engine serves
// cmd/pinservd; this walkthrough is what its endpoints look like from a
// client.
//
//	go run ./examples/serve
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"

	pinning "repro"
)

func main() {
	srv := pinning.NewAdvisorServer(pinning.AdvisorOptions{
		Config: pinning.ExperimentConfig{Quick: true, Reps: 2, Seed: 42},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Println("advisor listening on", base)

	const question = `{"name":"fig3","recommend":{"cores":16}}`

	// 1. Cold: this request simulates the figure.
	body, source := post(base, question)
	fmt.Printf("\ncold ask:   source=%s, %d bytes\n", source, len(body))
	var resp pinning.AdvisorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		log.Fatal(err)
	}
	if rec := resp.Recommendation; rec != nil {
		fmt.Printf("advice for %s at %d cores (CHR %.2f): %s/%s, predicted overhead %.3f\n",
			rec.Class, rec.Cores, rec.CHR, rec.Platform, rec.Mode, rec.Predicted)
		for _, c := range rec.Ranked {
			fmt.Printf("  ranked: %-5s %-8s %.3f\n", c.Platform, c.Mode, c.Predicted)
		}
	}

	// 2. Warm: the same question is one cache read — identical bytes.
	warmBody, warmSource := post(base, question)
	fmt.Printf("\nwarm ask:   source=%s, identical=%v\n", warmSource, string(warmBody) == string(body))

	// 3. Herd: many clients asking a NEW question at once still cost one
	// simulation — the singleflight leader answers for everyone.
	const herd = 8
	sources := make([]string, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sources[i] = post(base, `{"name":"fig4"}`)
		}(i)
	}
	wg.Wait()
	counts := map[string]int{}
	for _, s := range sources {
		counts[s]++
	}
	fmt.Printf("\nherd of %d on a cold key: sources %v\n", herd, counts)

	var stats struct {
		Warm, Coalesced, Simulated, Shed uint64
		Store                            struct{ Hits, Misses uint64 }
	}
	get(base+"/statsz", &stats)
	fmt.Printf("statsz: warm=%d coalesced=%d simulated=%d shed=%d; trial store %d hits / %d misses\n",
		stats.Warm, stats.Coalesced, stats.Simulated, stats.Shed, stats.Store.Hits, stats.Store.Misses)
}

func post(base, body string) ([]byte, string) {
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /run: %d %s (%v)", resp.StatusCode, b, err)
	}
	return b, resp.Header.Get("X-Pinserv-Source")
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
