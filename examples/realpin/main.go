// Realpin: the real-machine counterpart of the simulator. Runs the actual
// CPU-bound DCT transcoding kernel twice — unpinned, then pinned to a
// compact CPU set chosen by the same PinPlan the simulated operator uses —
// and reports both wall times. On multi-core Linux hosts the pinned run
// demonstrates the mechanics (and often the benefit) of affinity; on a
// single-CPU machine it simply shows the tooling working end to end.
//
//	go run ./examples/realpin
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/affinity"
	"repro/internal/transcode"
)

func main() {
	info := affinity.Discover()
	topo, err := info.Topology()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host:", topo)
	fmt.Println("affinity syscalls:", affinity.Supported())

	job := transcode.DefaultJob()
	job.Workers = runtime.NumCPU()
	if job.Workers > transcode.MaxWorkers {
		job.Workers = transcode.MaxWorkers
	}

	t0 := time.Now()
	res, err := transcode.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	unpinned := time.Since(t0)
	fmt.Printf("unpinned: %8.3fs  (%d blocks, PSNR %.1f dB)\n", unpinned.Seconds(), res.Blocks, res.PSNR)

	if !affinity.Supported() {
		fmt.Println("pinning unsupported here; stopping after the unpinned run")
		return
	}
	// Pin to a compact set of half the CPUs (at least one), IRQ-adjacent.
	n := topo.NumCPUs() / 2
	if n < 1 {
		n = 1
	}
	set := topo.PinPlan(n, 0)
	err = affinity.PinnedRun(set, func() error {
		t0 = time.Now()
		res, err = transcode.Run(job)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned %s: %8.3fs\n", set, time.Since(t0).Seconds())
	fmt.Println("\n(On the paper's 112-CPU host, pinning a CPU-bound container cut its")
	fmt.Println("overhead to nearly bare-metal — Fig 3 and best practice 2.)")
}
