// Webfarm: a platform-selection study for an IO-bound web tier — the Fig 5
// scenario as a decision procedure. Simulates the 1,000-request WordPress
// burst on every platform at one instance size and ranks them, reproducing
// the paper's best practice 4: pinned CN first; if pinning is not viable,
// VMCN beats both a VM and a vanilla container.
//
//	go run ./examples/webfarm [-cores 8] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	cores := flag.Int("cores", 8, "instance size (cores)")
	reps := flag.Int("reps", 3, "repetitions")
	flag.Parse()

	host := topology.PaperHost()
	w := workload.DefaultWeb()
	w.Requests = 500 // keep the example snappy

	type row struct {
		label string
		mean  float64
		ci    float64
	}
	var rows []row
	for _, s := range platform.StandardSeries() {
		spec := platform.Spec{Kind: s.Kind, Mode: s.Mode, Cores: *cores}
		var vals []float64
		for r := 0; r < *reps; r++ {
			seed := uint64(1000 + r)
			d, err := platform.Deploy(spec, machine.HostDefaults(host, seed), hypervisor.DefaultParams(), seed)
			if err != nil {
				log.Fatal(err)
			}
			inst := w.Spawn(workload.EnvFor(d.M, d.Group, d.Affinity, *cores))
			vals = append(vals, inst.Metric(d.M.Run(0)))
		}
		sum := stats.Summarize(vals)
		rows = append(rows, row{spec.Label(), sum.Mean, sum.CI95})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean < rows[j].mean })

	fmt.Printf("mean response of %d web requests on %d cores (%d reps):\n\n", w.Requests, *cores, *reps)
	for i, r := range rows {
		marker := "  "
		if i == 0 {
			marker = "→ "
		}
		fmt.Printf("%s%-14s %8.3fs ± %.3f\n", marker, r.label, r.mean, r.ci)
	}
	fmt.Println("\nPaper §VI best practice 4: for IO-intensive applications prefer a")
	fmt.Println("pinned container; when pinning is not viable, a container inside a")
	fmt.Println("VM imposes less overhead than a VM or a vanilla container.")
}
