// CHR advisor: the paper's §VI best practices as a library. Given
// application profiles (a transcoder, an MPI solver, a web tier, a NoSQL
// store) and a host, print the recommended platform, provisioning mode and
// container sizing (CHR band).
//
//	go run ./examples/chr_advisor
package main

import (
	"fmt"

	pinning "repro"
)

func main() {
	host := pinning.PaperHost()
	fmt.Println("host:", host)
	fmt.Println()

	profiles := []pinning.Profile{
		{Name: "video-transcoder", CPUUtilization: 0.98, IOPerSecond: 5, Threads: 16},
		{Name: "cfd-solver", CPUUtilization: 0.7, MessagesPerSecond: 5000, Threads: 64},
		{Name: "storefront-web", CPUUtilization: 0.35, IOPerSecond: 900, Multiprocess: true},
		{Name: "metrics-nosql", CPUUtilization: 0.4, IOPerSecond: 12000, Threads: 100},
	}
	for _, p := range profiles {
		rec := pinning.Advise(p, host)
		fmt.Printf("%s\n", p.Name)
		fmt.Printf("  class:     %v\n", rec.Class)
		fmt.Printf("  deploy as: %v %v, ≥%d cores (CHR %v on this host)\n",
			rec.Mode, rec.Platform, rec.MinCores, rec.CHRTarget)
		for _, r := range rec.Rationale {
			fmt.Printf("  - %s\n", r)
		}
		fmt.Println()
	}
}
