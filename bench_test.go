package pinning

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpumanager"
	"repro/internal/experiments"
	"repro/internal/grubconf"
	"repro/internal/hypervisor"
	"repro/internal/irqsim"
	"repro/internal/kvstore"
	"repro/internal/machine"
	"repro/internal/minimpi"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transcode"
	"repro/internal/workload"
)

// experimentsSeries returns the seven standard platform series as specs.
func experimentsSeries() []platform.Spec {
	var out []platform.Spec
	for _, s := range platform.StandardSeries() {
		out = append(out, platform.Spec{Kind: s.Kind, Mode: s.Mode})
	}
	return out
}

// deployFor builds a deployment with default calibrations.
func deployFor(spec platform.Spec, host *topology.Topology, seed uint64) (*platform.Deployment, error) {
	return platform.Deploy(spec, machine.HostDefaults(host, seed), hypervisor.DefaultParams(), seed)
}

// benchCfg keeps per-iteration cost low; absolute values are not the point
// of the benchmark harness — regenerating the figures is.
func benchCfg(seed uint64) experiments.Config {
	return experiments.Config{Quick: true, Reps: 1, Seed: seed}
}

// reportFigure exposes the headline ratio of a regenerated figure as a
// benchmark metric so `go test -bench` output documents the reproduction.
func reportFigure(b *testing.B, f experiments.Figure, series, x string) {
	b.Helper()
	if c, ok := f.Cell(series, x); ok {
		b.ReportMetric(c.Ratio, "overhead_ratio")
	}
}

// ---- one benchmark per paper table ------------------------------------

// BenchmarkTable1Workloads builds each of Table I's workload models and
// spawns it onto a fresh host machine (no run): the cost of workload
// generation itself.
func BenchmarkTable1Workloads(b *testing.B) {
	host := topology.PaperHost()
	ws := []workload.Workload{
		workload.DefaultTranscode(),
		workload.DefaultMPISearch(),
		workload.DefaultWeb(),
		workload.DefaultNoSQL(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			m := machine.MustNew(machine.HostDefaults(host, uint64(i)))
			w.Spawn(workload.EnvFor(m, nil, topology.CPUSet{}, 16))
		}
	}
}

// BenchmarkTable2Instances deploys every Table II instance size on every
// platform (build cost of the platform assembly path).
func BenchmarkTable2Instances(b *testing.B) {
	host := topology.PaperHost()
	for i := 0; i < b.N; i++ {
		for _, it := range experiments.InstanceTypes {
			for _, s := range experimentsSeries() {
				s.Cores = it.Cores
				if _, err := deployFor(s, host, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkTable3Platforms runs a tiny smoke workload on each of Table III's
// four platforms.
func BenchmarkTable3Platforms(b *testing.B) {
	host := topology.PaperHost()
	w := workload.Transcode{TotalWork: sim.FromSeconds(0.2), Threads: 4, HeavyThreads: 4, Segments: 1}
	for i := 0; i < b.N; i++ {
		for _, s := range experimentsSeries() {
			s.Cores = 4
			d, err := deployFor(s, host, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			w.Spawn(workload.EnvFor(d.M, d.Group, d.Affinity, 4))
			d.M.Run(0)
		}
	}
}

// ---- one benchmark per paper figure ------------------------------------

func BenchmarkFig3FFmpeg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig3(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Vanilla VM", "Large")
	}
}

func BenchmarkFig4MPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig4(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Vanilla CN", "xLarge")
	}
}

func BenchmarkFig5WordPress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig5(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Pinned CN", "xLarge")
	}
}

func BenchmarkFig6Cassandra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig6(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Vanilla CN", "xLarge")
	}
}

func BenchmarkFig7CHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig7(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		// The headline: the same container is slower on the 112-core host.
		small, ok1 := f.Cell("Pinned CN", "16 cores")
		big, ok2 := f.Cell("Pinned CN", "112 cores")
		if ok1 && ok2 && small.Summary.Mean > 0 {
			b.ReportMetric(big.Summary.Mean/small.Summary.Mean, "host112_vs_host16")
		}
	}
}

func BenchmarkFig8Multitask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig8(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		one, ok1 := f.Cell("Vanilla CN", "1 Large Task")
		thirty, ok2 := f.Cell("Vanilla CN", "30 Small Tasks")
		if ok1 && ok2 && one.Summary.Mean > 0 {
			b.ReportMetric(thirty.Summary.Mean/one.Summary.Mean, "multitask_slowdown")
		}
	}
}

// BenchmarkFigNetMicroservice regenerates the extension figure (the §VI
// future-work network-overhead study): a disk-free two-tier microservice
// across all platforms.
func BenchmarkFigNetMicroservice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigNet(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Vanilla CN", "xLarge")
	}
}

// BenchmarkCHRSweep regenerates the §IV-A CHR band analysis.
func BenchmarkCHRSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bands, err := experiments.RunCHRSweep(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(bands) > 0 {
			b.ReportMetric(bands[0].LowCHR, "ffmpeg_chr_low")
		}
	}
}

// ---- ablation benchmarks (DESIGN.md §7) --------------------------------

// ablationFig7Gap measures the Fig 7 host-size effect with an optional
// mechanism switched off.
func ablationFig7Gap(b *testing.B, mutate func(*machine.Config)) {
	cfg := benchCfg(1)
	cfg.MutateHost = mutate
	f, err := experiments.RunFig7(cfg)
	if err != nil {
		b.Fatal(err)
	}
	small, _ := f.Cell("Pinned CN", "16 cores")
	big, _ := f.Cell("Pinned CN", "112 cores")
	if small.Summary.Mean > 0 {
		b.ReportMetric(big.Summary.Mean/small.Summary.Mean, "host112_vs_host16")
	}
}

// BenchmarkAblationAcctWalk removes the per-host-CPU cgroup accounting walk
// (A1): the container side of Fig 7's host-size effect collapses to the
// NUMA share alone.
func BenchmarkAblationAcctWalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationFig7Gap(b, func(c *machine.Config) { c.CG.AcctPerCPU = 0 })
	}
}

// BenchmarkAblationNUMA removes the memory-interleave penalty: Fig 7's
// host-size effect should mostly vanish.
func BenchmarkAblationNUMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationFig7Gap(b, func(c *machine.Config) {
			c.Cache.NUMAPenaltyPerRemoteSocketFraction = 0
		})
	}
}

// BenchmarkAblationIRQAffinity flattens the IRQ distance costs (A2): pinned
// containers lose their IO-affinity edge in the Cassandra experiment.
func BenchmarkAblationIRQAffinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(uint64(i))
		cfg.MutateHost = func(c *machine.Config) {
			c.IRQ.SameSocketCost = 0
			c.IRQ.CrossSocketCost = 0
		}
		f, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Pinned CN", "xLarge")
	}
}

// BenchmarkAblationVMFastpath removes the hypervisor's shared-memory
// message fast path (A3): guest messages pay a host-kernel-like sync cost,
// and the VM loses its MPI advantage over containers in Fig 4.
func BenchmarkAblationVMFastpath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(uint64(i))
		hv := hypervisor.DefaultParams()
		hv.GuestMsgSyncCost = 64 * sim.Microsecond // vs the 10µs fast path
		hv.GuestLineScale = 8
		cfg.HV = &hv
		f, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Pinned VM", "16xLarge")
	}
}

// BenchmarkAblationChurnWS forces the unthrottle-churn working-set factor to
// 1 (A5): Cassandra's vanilla-CN PSO falls back toward WordPress levels,
// showing the working-set term is what separates ultra-IO from plain IO in
// Fig 6.
func BenchmarkAblationChurnWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(uint64(i))
		cfg.MutateHost = func(c *machine.Config) { c.CG.ChurnScaleOverride = 1 }
		f, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Vanilla CN", "2xLarge")
	}
}

// BenchmarkAblationWakePlacement disables the last-CPU preference by zeroing
// cache penalties (A4 proxy): migration costs stop mattering, so vanilla
// and pinned converge in Fig 3.
func BenchmarkAblationWakePlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(uint64(i))
		cfg.MutateHost = func(c *machine.Config) {
			c.Cache.SMTSiblingPenalty = 0
			c.Cache.SameSocketPenalty = 0
			c.Cache.CrossSocketPenalty = 0
		}
		f, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f, "Vanilla CN", "Large")
	}
}

// ---- micro-benchmarks of the substrates --------------------------------

func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Microsecond, func() {})
		eng.Step()
	}
}

func BenchmarkCPUSetOps(b *testing.B) {
	s := topology.Range(0, 111)
	o := topology.Range(56, 200)
	for i := 0; i < b.N; i++ {
		_ = s.Intersect(o).Union(s.Difference(o)).Count()
	}
}

func BenchmarkSchedulerSlice(b *testing.B) {
	host := topology.PaperHost()
	m := machine.MustNew(machine.HostDefaults(host, 1))
	for i := 0; i < 64; i++ {
		m.Spawn(sched.TaskSpec{
			Name:    "spin",
			Program: sched.Sequence(sched.Compute(sim.Time(b.N) * 10 * sim.Microsecond)),
		}, 0)
	}
	b.ResetTimer()
	m.Run(0)
}

func BenchmarkIRQCompletionCost(b *testing.B) {
	host := topology.PaperHost()
	ctl := irqsim.NewController(host, irqsim.DefaultParams(), irqsim.DefaultChannels())
	ch := ctl.Channel(irqsim.ChanDisk)
	for i := 0; i < b.N; i++ {
		_ = ctl.CompletionCost(ch, i%host.NumCPUs())
	}
}

func BenchmarkMiniMPIAllreduce(b *testing.B) {
	c, err := minimpi.New(4, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	_ = c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := minimpi.Run(4, time.Minute, func(c *minimpi.Comm, rank int) error {
			_, err := c.Allreduce(rank, []int64{int64(rank)}, func(a, x int64) int64 { return a + x })
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranscodeKernel(b *testing.B) {
	job := transcode.Job{Width: 64, Height: 64, Frames: 2, Quality: 28, Workers: 2, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := transcode.Run(job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStorePut(b *testing.B) {
	s, err := kvstore.Open(kvstore.Options{MemtableFlushEntries: 1 << 20, CompactFanIn: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(kvKey(i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatsSummarize(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i%97) / 7
	}
	for i := 0; i < b.N; i++ {
		_ = stats.Summarize(xs)
	}
}

func kvKey(i int) string {
	const digits = "0123456789"
	buf := []byte("bench-000000")
	for p := len(buf) - 1; i > 0 && p >= 6; p-- {
		buf[p] = digits[i%10]
		i /= 10
	}
	return string(buf)
}

// ---- extension-package micro-benchmarks --------------------------------

// BenchmarkTraceHistRecord measures the BCC-analog histogram hot path.
func BenchmarkTraceHistRecord(b *testing.B) {
	h := trace.NewHist(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(sim.Time(i%1000) * sim.Microsecond)
	}
}

// BenchmarkTraceCollector runs a small traced machine end to end: the cost
// of full instrumentation per simulated run.
func BenchmarkTraceCollector(b *testing.B) {
	topo := topology.SmallHost16()
	for i := 0; i < b.N; i++ {
		col := trace.NewCollector(nil)
		cfg := machine.HostDefaults(topo, uint64(i))
		cfg.Trace = col.Fn()
		m := machine.MustNew(cfg)
		for j := 0; j < 8; j++ {
			m.Spawn(sched.TaskSpec{
				Name:    "t",
				Program: sched.Sequence(sched.Compute(sim.Millisecond), sched.IO(0, sim.Millisecond), sched.Compute(sim.Millisecond)),
			}, 0)
		}
		m.Run(0)
		if col.Events() == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkCPUManagerChurn measures an allocate/release cycle of the static
// policy on the paper host.
func BenchmarkCPUManagerChurn(b *testing.B) {
	topo := topology.PaperHost()
	mgr, err := cpumanager.New(topo, topology.NewCPUSet(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Allocate(cpumanager.Request{Name: "x", CPUs: 16, NearCPU: 2}); err != nil {
			b.Fatal(err)
		}
		if err := mgr.Release("x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrubRoundTrip measures cmdline render + parse.
func BenchmarkGrubRoundTrip(b *testing.B) {
	topo := topology.PaperHost()
	cfg, err := grubconf.IsolateFor(topo, topo.PinPlan(16, 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := grubconf.Parse(cfg.CmdLine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelFit measures fitting the §VI analytic law on a synthetic
// figs-3..6-sized sample set (24 cells × 4 figures).
func BenchmarkModelFit(b *testing.B) {
	var samples []model.Sample
	for _, k := range []platform.Kind{platform.VM, platform.CN, platform.VMCN} {
		for _, m := range []platform.Mode{platform.Vanilla, platform.Pinned} {
			for _, cl := range []core.AppClass{core.CPUBound, core.Parallel, core.IOBound, core.UltraIOBound} {
				for _, cores := range []int{2, 4, 8, 16, 32, 64} {
					chr := float64(cores) / 112
					samples = append(samples, model.Sample{
						Platform: k, Mode: m, Class: cl,
						CHR:   chr,
						Ratio: 1.2 + 2.0*float64(int(k)%2)*chr,
					})
				}
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.Fit(samples); err != nil {
			b.Fatal(err)
		}
	}
}
