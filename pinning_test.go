package pinning

import (
	"testing"

	"repro/internal/experiments"
)

func TestFacadeHosts(t *testing.T) {
	if PaperHost().NumCPUs() != 112 {
		t.Fatal("paper host")
	}
	if SmallHost16().NumCPUs() != 16 {
		t.Fatal("small host")
	}
}

func TestFacadeClassifyAndAdvise(t *testing.T) {
	p := Profile{Name: "transcoder", CPUUtilization: 0.95, IOPerSecond: 2}
	if Classify(p) != CPUBound {
		t.Fatal("classify")
	}
	rec := Advise(p, PaperHost())
	if rec.Platform != CN || rec.Mode != Pinned {
		t.Fatalf("advise: %v %v", rec.Mode, rec.Platform)
	}
	if !RecommendedCHR(UltraIOBound).Contains(0.4) {
		t.Fatal("chr band")
	}
	if CHR(16, PaperHost()) <= 0 {
		t.Fatal("chr")
	}
}

func TestFacadeParseCPUList(t *testing.T) {
	set, err := ParseCPUList("0-2,5")
	if err != nil || set.Count() != 4 {
		t.Fatalf("parse: %v %v", set, err)
	}
	if _, err := ParseCPUList("bogus"); err == nil {
		t.Fatal("bad list must fail")
	}
}

func TestFacadeRunFigure(t *testing.T) {
	f, err := RunFigure(8, ExperimentConfig{Quick: true, Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 || len(f.XLabels) != 2 {
		t.Fatalf("figure shape: %d series × %d labels", len(f.Series), len(f.XLabels))
	}
	if _, err := RunFigure(99, ExperimentConfig{}); err == nil {
		t.Fatal("bad figure number must fail")
	}
}

func TestFacadeRunSweep(t *testing.T) {
	memo := NewTrialMemo()
	cfg := ExperimentConfig{Quick: true, Seed: 5, Workers: 4, Memo: memo}
	spec := SweepSpec{
		Platforms: []PlatformSpec{{Kind: CN, Mode: Pinned}, {Kind: BM, Mode: Vanilla}},
		Cores:     []int{4},
		Workloads: []string{"ffmpeg"},
		Reps:      2,
	}
	res, err := RunSweep(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells: %d", len(res.Cells))
	}
	if memo.Misses() != 4 {
		t.Fatalf("memo misses: %d, want one per trial", memo.Misses())
	}
	if _, err := RunSweep(spec, cfg); err != nil {
		t.Fatal(err)
	}
	if memo.Misses() != 4 {
		t.Fatal("repeat sweep must be served from the memo")
	}
}

func TestFacadeCPUManager(t *testing.T) {
	mgr, err := NewCPUManager(PaperHost(), CPUSet{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := mgr.Allocate(CPURequest{Name: "db", CPUs: 8, NearCPU: 2})
	if err != nil || set.Count() != 8 {
		t.Fatalf("allocate: %v %v", set, err)
	}
	if err := mgr.Release("db"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGrub(t *testing.T) {
	host := PaperHost()
	c, err := GrubForInstance(host, 16)
	if err != nil || c.CmdLine() != "maxcpus=16" {
		t.Fatalf("grub instance: %v %v", c.CmdLine(), err)
	}
	iso, err := GrubIsolate(host, host.PinPlan(8, 0))
	if err != nil || iso.Isolated.Count() != 8 {
		t.Fatalf("grub isolate: %v %v", iso, err)
	}
}

func TestFacadeOverheadModel(t *testing.T) {
	var samples []OverheadSample
	for _, chr := range []float64{0.05, 0.1, 0.2, 0.4} {
		samples = append(samples, OverheadSample{
			Platform: VM, Mode: Pinned, Class: CPUBound, CHR: chr, Ratio: 2.0,
		})
	}
	m, err := FitSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Predict(VM, Pinned, CPUBound, 0.14)
	if err != nil || r < 1.9 || r > 2.1 {
		t.Fatalf("predict: %v %v", r, err)
	}
	if Isolation(VMCN) <= Isolation(CN) {
		t.Fatal("isolation ordering")
	}
}

func TestFacadeRunProfile(t *testing.T) {
	col, secs, err := RunProfile(ProfileSpec{
		App: "ffmpeg", Platform: "cn", Mode: "pinned", Size: "Large",
	}, ExperimentConfig{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 || col.Events() == 0 {
		t.Fatalf("profile: %vs, %d events", secs, col.Events())
	}
}

func TestConstantsMatchInternal(t *testing.T) {
	// The facade constants must stay aligned with the internal enums.
	if BM.String() != "BM" || VMCN.String() != "VMCN" {
		t.Fatal("platform kinds")
	}
	if Vanilla.String() != "Vanilla" || Pinned.String() != "Pinned" {
		t.Fatal("modes")
	}
	series := experiments.PlatformTable
	if len(series) != 4 {
		t.Fatal("Table III")
	}
}
