// Command pinservd is the always-on pinning-advisor daemon: clients POST a
// scenario (a registered name, optionally with replacement cells, or a
// full inline spec) to /run and get the predicted figure plus a ranked
// pinning recommendation. Repeated questions are served from a sharded
// response cache; identical in-flight questions coalesce onto one
// simulation; saturation sheds load with 429 instead of collapsing.
//
// Usage:
//
//	pinservd -listen :8080 -quick                 # serve on TCP
//	pinservd -listen unix:/run/pinserv.sock       # serve on a unix socket
//	pinservd -quick -store runs/ -warm fig3,fig4  # durable store, pre-warmed
//	pinservd -quick -selftest -min-rps 10000      # boot, verify, load-test, exit
//
// Endpoints:
//
//	POST /run        {"name":"fig3"} or {"scenario":{...}}, plus optional
//	                 "cells", "reps", "seed", "recommend" — see README
//	GET  /healthz    liveness + degraded-store flag
//	GET  /statsz     serving counters (warm/coalesced/simulated/shed) and
//	                 the trial store's audit snapshot
//	GET  /scenarios  the registered scenario catalog
//
// Every /run response carries X-Pinserv-Source: warm | coalesced |
// simulated — the provenance is observable but never changes the body.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
	"repro/internal/storecli"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "listen address: host:port, or unix:/path/to.sock")
		reps       = flag.Int("reps", 0, "default repetitions per cell (0 = scenario defaults)")
		seed       = flag.Uint64("seed", 42, "default random seed")
		quick      = flag.Bool("quick", false, "shrink workloads for fast answers")
		workers    = flag.Int("workers", 0, "per-simulation trial fan-out (0 = GOMAXPROCS)")
		store      = flag.String("store", "", "durable trial store directory: answers persist across restarts")
		merge      = flag.String("merge", "", "comma list of trial store directories to load at boot")
		degraded   = flag.String("store-degraded", "fail", "unusable -store directory policy: fail or allow")
		verbose    = flag.Bool("v", false, "print trial store statistics on stderr at shutdown")
		inflight   = flag.Int("max-inflight", 0, "concurrent simulation bound (0 = GOMAXPROCS)")
		queue      = flag.Int("max-queue", 0, "cold requests allowed to wait for a slot (0 = 2*max-inflight)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		warm       = flag.String("warm", "", "comma list of scenario names to pre-warm at boot ('all' = every registered)")

		selftest = flag.Bool("selftest", false, "boot on a private socket, verify coalescing and warm throughput, exit")
		stConns  = flag.Int("selftest-conns", 4, "selftest load connections")
		stDur    = flag.Duration("selftest-duration", 3*time.Second, "selftest load duration")
		stHerd   = flag.Int("selftest-herd", 32, "selftest concurrent identical cold requests")
		minRPS   = flag.Float64("min-rps", 10000, "selftest fails below this warm req/s")
	)
	flag.Parse()

	cfg := experiments.Config{Reps: *reps, Seed: *seed, Quick: *quick, Workers: *workers}
	_, finish, err := storecli.Apply("pinservd", &cfg, storecli.Options{
		Store: *store, Merge: *merge, Degraded: *degraded, Workers: *workers, Verbose: *verbose,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if finish != nil {
		defer finish()
	}

	srv := serve.NewServer(serve.Options{
		Config:      cfg,
		MaxInflight: *inflight,
		MaxQueue:    *queue,
		RetryAfter:  *retryAfter,
	})

	if *warm != "" {
		if err := prewarm(srv, *warm); err != nil {
			fatalf("%v", err)
		}
	}

	if *selftest {
		if err := runSelftest(srv, *stConns, *stDur, *stHerd, *minRPS); err != nil {
			fatalf("selftest: %v", err)
		}
		fmt.Println("pinservd: selftest passed")
		return
	}

	network, addr := loadtest.ParseListen(*listen)
	ln, err := net.Listen(network, addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "pinservd: serving on %s\n", *listen)
	if err := (&http.Server{Handler: srv}).Serve(ln); err != nil {
		fatalf("%v", err)
	}
}

// prewarm runs the named scenarios through the server's own engine so
// their responses are warm before the first client connects.
func prewarm(srv *serve.Server, list string) error {
	names := []string{}
	if list == "all" {
		names = experiments.ScenarioNames()
	} else {
		for _, n := range strings.Split(list, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	for _, name := range names {
		rec := newRecorder()
		srv.ServeHTTP(rec, postRequest(fmt.Sprintf(`{"name":%q}`, name)))
		if rec.code != http.StatusOK {
			return fmt.Errorf("pinservd: pre-warm %s: %d %s", name, rec.code, rec.body.String())
		}
		fmt.Fprintf(os.Stderr, "pinservd: pre-warmed %s\n", name)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pinservd: "+format+"\n", args...)
	os.Exit(1)
}
