package main

// The -selftest harness: boot the server on a private unix socket, prove
// the two serving invariants end-to-end (a thundering herd of identical
// cold requests runs exactly one simulation; warm keys sustain the target
// throughput with bounded tail latency), print the evidence, exit nonzero
// on any violation. CI runs this as the serving gate.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

const selftestBody = `{"name":"fig3"}`

func runSelftest(srv *serve.Server, conns int, dur time.Duration, herd int, minRPS float64) error {
	dir, err := os.MkdirTemp("", "pinservd-selftest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "pinservd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	client := unixClient(sock)

	// Phase 1 — coalescing: herd identical cold requests, count simulations.
	fmt.Fprintf(os.Stderr, "pinservd: selftest: herding %d identical cold requests\n", herd)
	sources := make([]string, herd)
	errs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sources[i], errs[i] = postRun(client, selftestBody)
		}(i)
	}
	wg.Wait()
	counts := map[string]int{}
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			return fmt.Errorf("herd request %d: %w", i, errs[i])
		}
		counts[sources[i]]++
	}
	st, err := statsz(client)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pinservd: selftest: herd sources %v; statsz simulated=%d coalesced=%d warm=%d shed=%d\n",
		counts, st.Simulated, st.Coalesced, st.Warm, st.Shed)
	if st.Simulated != 1 {
		return fmt.Errorf("herd of %d ran %d simulations, want exactly 1", herd, st.Simulated)
	}
	if st.Shed != 0 {
		return fmt.Errorf("herd shed %d requests", st.Shed)
	}

	// Phase 2 — warm throughput: every response must come from the response
	// cache, errors are failures, and the rate must clear the bar.
	fmt.Fprintf(os.Stderr, "pinservd: selftest: warm load, %d conns for %s\n", conns, dur)
	rep, err := loadtest.Run(loadtest.Options{
		URL: "http://pinservd/run", Socket: sock, Body: []byte(selftestBody),
		Conns: conns, Duration: dur, WantSource: "warm",
	})
	if err != nil {
		return err
	}
	fmt.Printf("pinservd: selftest: %s\n", rep.String())
	if rep.Errors > 0 {
		return fmt.Errorf("%d errors under warm load", rep.Errors)
	}
	if rep.WrongSource > 0 {
		return fmt.Errorf("%d responses not served warm", rep.WrongSource)
	}
	if rep.RPS < minRPS {
		return fmt.Errorf("warm throughput %.0f req/s below the %.0f req/s bar", rep.RPS, minRPS)
	}
	return nil
}

// unixClient returns an http.Client whose every connection dials the
// given unix socket.
func unixClient(sock string) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", sock)
		},
	}}
}

// postRun POSTs body to /run and returns the provenance header.
func postRun(c *http.Client, body string) (source string, err error) {
	resp, err := c.Post("http://pinservd/run", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%d: %s", resp.StatusCode, b)
	}
	return resp.Header.Get(serve.SourceHeader), nil
}

// statsz fetches and decodes /statsz.
func statsz(c *http.Client) (serve.StatsJSON, error) {
	var st serve.StatsJSON
	resp, err := c.Get("http://pinservd/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// recorder is a minimal in-process http.ResponseWriter for pre-warming
// without a listener (net/http/httptest is a test-only dependency).
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{code: http.StatusOK, header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// postRequest builds an in-process POST /run request.
func postRequest(body string) *http.Request {
	req, err := http.NewRequest(http.MethodPost, "http://pinservd/run", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	return req
}
