// Command pinctl is the operational side of the paper: inspect and set CPU
// affinity of processes (taskset-style), pin Docker containers via the
// Engine API (--cpuset-cpus / --cpus), generate libvirt <cputune> pinning
// XML for VMs, and print a pin plan for this machine's topology.
//
// Usage:
//
//	pinctl show <pid>                     # print a process's affinity
//	pinctl set <pid> <cpulist>            # bind a process to CPUs
//	pinctl plan -cores 4 [-near 0]        # IRQ-adjacent pin plan for this host
//	pinctl docker list                    # containers and their CPU config
//	pinctl docker pin <id> <cpulist>      # pin a container
//	pinctl docker quota <id> <cores>      # vanilla-mode quota
//	pinctl docker run <name> <image> <cpulist>  # create+start born-pinned
//	pinctl kvm -name vm0 -vcpus 4         # emit <cputune> pinning XML
//	pinctl grub -cores 16                 # BM instance provisioning (maxcpus=)
//	pinctl grub -isolate 8 [-near 0]      # isolcpus/nohz_full/rcu_nocbs recipe
//	pinctl alloc -name db -cores 8        # static-policy exclusive allocation
//	pinctl alloc -release db              # return an allocation to the pool
//	pinctl topo                           # discovered host topology
//
// alloc persists its ledger in a kubelet-style state file (-state, default
// ./cpu_manager_state.json) so allocations survive across invocations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/affinity"
	"repro/internal/cpumanager"
	"repro/internal/dockerctl"
	"repro/internal/grubconf"
	"repro/internal/kvmconf"
	"repro/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "show":
		err = cmdShow(os.Args[2:])
	case "set":
		err = cmdSet(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "docker":
		err = cmdDocker(os.Args[2:])
	case "kvm":
		err = cmdKVM(os.Args[2:])
	case "grub":
		err = cmdGrub(os.Args[2:])
	case "alloc":
		err = cmdAlloc(os.Args[2:])
	case "topo":
		err = cmdTopo()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pinctl {show|set|plan|docker|kvm|grub|alloc|topo} ...")
	os.Exit(2)
}

func cmdAlloc(args []string) error {
	fs := flag.NewFlagSet("alloc", flag.ExitOnError)
	name := fs.String("name", "", "assignment name (container/pod)")
	cores := fs.Int("cores", 0, "exclusive CPUs to allocate")
	near := fs.Int("near", -1, "IRQ home CPU to pack the allocation around")
	reserved := fs.String("reserved", "", "system-reserved cpu list (fresh state only)")
	release := fs.String("release", "", "release this assignment instead of allocating")
	state := fs.String("state", "cpu_manager_state.json", "kubelet-style state file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	topo, err := affinity.Discover().Topology()
	if err != nil {
		return err
	}
	var mgr *cpumanager.Manager
	if f, err := os.Open(*state); err == nil {
		mgr, err = cpumanager.Restore(topo, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("state file %s: %w", *state, err)
		}
	} else {
		res, err := topology.ParseList(*reserved)
		if err != nil {
			return fmt.Errorf("bad -reserved: %w", err)
		}
		if mgr, err = cpumanager.New(topo, res); err != nil {
			return err
		}
	}
	switch {
	case *release != "":
		if err := mgr.Release(*release); err != nil {
			return err
		}
		fmt.Printf("released %s\n", *release)
	case *name != "" && *cores > 0:
		set, err := mgr.Allocate(cpumanager.Request{Name: *name, CPUs: *cores, NearCPU: *near})
		if err != nil {
			return err
		}
		fmt.Printf("%s: --cpuset-cpus=%s (%d CPUs, %d socket(s))\n",
			*name, set, set.Count(), topo.SocketsSpanned(set))
	default:
		fmt.Println(mgr)
		for n, s := range mgr.Assignments() {
			fmt.Printf("  %-16s %s\n", n, s)
		}
		fmt.Printf("  %-16s %s\n", "(shared pool)", mgr.SharedPool())
		return nil
	}
	f, err := os.Create(*state)
	if err != nil {
		return err
	}
	defer f.Close()
	return mgr.WriteCheckpoint(f)
}

func cmdGrub(args []string) error {
	fs := flag.NewFlagSet("grub", flag.ExitOnError)
	cores := fs.Int("cores", 0, "provision the host as an instance of this many CPUs (maxcpus=)")
	isolate := fs.Int("isolate", 0, "isolate this many CPUs for pinned workloads")
	near := fs.Int("near", 0, "IRQ home CPU the isolated set should pack around")
	if err := fs.Parse(args); err != nil {
		return err
	}
	topo, err := affinity.Discover().Topology()
	if err != nil {
		return err
	}
	var cfg grubconf.Config
	switch {
	case *cores > 0:
		cfg, err = grubconf.ForInstance(topo, *cores)
	case *isolate > 0:
		cfg, err = grubconf.IsolateFor(topo, topo.PinPlan(*isolate, *near))
	default:
		return fmt.Errorf("grub needs -cores N or -isolate N")
	}
	if err != nil {
		return err
	}
	fmt.Printf("host: %s\nkernel args: %s\n%s\n", topo, cfg.CmdLine(), cfg.GrubLine())
	fmt.Println("# apply: edit /etc/default/grub, run update-grub, reboot")
	return nil
}

func cmdShow(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("show needs a pid")
	}
	pid, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("bad pid %q: %v", args[0], err)
	}
	set, err := affinity.Get(pid)
	if err != nil {
		return err
	}
	fmt.Printf("pid %d: cpus %s (%d)\n", pid, set, set.Count())
	return nil
}

func cmdSet(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("set needs a pid and a cpu list")
	}
	pid, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("bad pid %q: %v", args[0], err)
	}
	set, err := topology.ParseList(args[1])
	if err != nil {
		return err
	}
	if err := affinity.Set(pid, set); err != nil {
		return err
	}
	fmt.Printf("pid %d pinned to %s\n", pid, set)
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	cores := fs.Int("cores", 2, "container/VM size in CPUs")
	near := fs.Int("near", 0, "IRQ home CPU to pin near (bias socket)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	topo, err := affinity.Discover().Topology()
	if err != nil {
		return err
	}
	set := topo.PinPlan(*cores, *near)
	fmt.Printf("host: %s\nplan: --cpuset-cpus=%s\n", topo, set)
	return nil
}

func cmdDocker(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("docker needs a subcommand: list|pin|quota|run")
	}
	ctx := context.Background()
	cli := dockerctl.New(os.Getenv("DOCKER_SOCKET"))
	switch args[0] {
	case "list":
		cs, err := cli.ContainerList(ctx, true)
		if err != nil {
			return err
		}
		for _, c := range cs {
			d, err := cli.ContainerInspect(ctx, c.ID)
			if err != nil {
				return err
			}
			name := c.ID[:min(12, len(c.ID))]
			if len(c.Names) > 0 {
				name = c.Names[0]
			}
			fmt.Printf("%-24s state=%-8s cpuset=%-12q cpus=%.2f\n",
				name, c.State, d.HostConfig.CpusetCpus, float64(d.HostConfig.NanoCpus)/1e9)
		}
		return nil
	case "pin":
		if len(args) != 3 {
			return fmt.Errorf("docker pin needs <id> <cpulist>")
		}
		set, err := topology.ParseList(args[2])
		if err != nil {
			return err
		}
		warnings, err := cli.Pin(ctx, args[1], set)
		if err != nil {
			return err
		}
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		fmt.Printf("container %s pinned to %s\n", args[1], set)
		return nil
	case "run":
		if len(args) != 4 {
			return fmt.Errorf("docker run needs <name> <image> <cpulist>")
		}
		set, err := topology.ParseList(args[3])
		if err != nil {
			return err
		}
		id, err := cli.RunPinned(ctx, args[1], args[2], nil, set)
		if err != nil {
			return err
		}
		fmt.Printf("container %s (%s) started pinned to %s\n", args[1], id, set)
		return nil
	case "quota":
		if len(args) != 3 {
			return fmt.Errorf("docker quota needs <id> <cores>")
		}
		cores, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("bad cores %q: %v", args[2], err)
		}
		warnings, err := cli.SetQuota(ctx, args[1], cores)
		if err != nil {
			return err
		}
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		fmt.Printf("container %s quota set to %.2f cores\n", args[1], cores)
		return nil
	}
	return fmt.Errorf("unknown docker subcommand %q", args[0])
}

func cmdKVM(args []string) error {
	fs := flag.NewFlagSet("kvm", flag.ExitOnError)
	name := fs.String("name", "vm0", "domain name")
	vcpus := fs.Int("vcpus", 2, "vCPU count")
	near := fs.Int("near", 0, "IRQ home CPU to pin near")
	if err := fs.Parse(args); err != nil {
		return err
	}
	topo, err := affinity.Discover().Topology()
	if err != nil {
		return err
	}
	d, err := kvmconf.Plan(*name, *vcpus, topo, *near)
	if err != nil {
		return err
	}
	xml, err := kvmconf.Marshal(d)
	if err != nil {
		return err
	}
	fmt.Print(xml)
	return nil
}

func cmdTopo() error {
	info := affinity.Discover()
	topo, err := info.Topology()
	if err != nil {
		return err
	}
	fmt.Println(topo)
	fmt.Printf("online: %s\n", info.Online)
	fmt.Printf("affinity syscalls supported: %v\n", affinity.Supported())
	return nil
}
