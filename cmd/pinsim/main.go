// Command pinsim regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	pinsim -fig 3          # print Figure 3 as a text table
//	pinsim -fig all        # print every figure
//	pinsim -list           # list every registered scenario
//	pinsim -fig fig6-large # any registered scenario runs by name
//	pinsim -scenario run.json   # run a user-defined scenario from JSON
//	pinsim -table 2        # print Table II
//	pinsim -chr            # print the §IV-A CHR band analysis
//	pinsim -decompose 3    # print the §IV PTO/PSO split of Figure 3
//	pinsim -fig 5 -csv     # CSV output
//	pinsim -fig 3 -breakdown  # include the overhead attribution
//	pinsim -reps 5 -seed 7 -quick
//	pinsim -fig all -workers 8   # parallel trial fan-out (deterministic)
//
// Incremental and distributed runs (the durable trial store):
//
//	pinsim -fig all -quick -store runs/   # cold: simulate + persist
//	pinsim -fig all -quick -store runs/   # warm: replay, 0 simulations
//	pinsim -fig all -quick -shard 0/2 -store s0/   # machine 1 of 2
//	pinsim -fig all -quick -shard 1/2 -store s1/   # machine 2 of 2
//	pinsim -fig all -quick -merge s0/,s1/          # assemble, identical bytes
//	pinsim -fig 3 -quick -store runs/ -v           # print store statistics
//
// Profiling (the paper's §III-A BCC methodology — cpudist/offcputime):
//
//	pinsim -profile -app cassandra -platform cn -mode vanilla -size xLarge
//
// Self-profiling (pprof captures of the simulator itself, for perf PRs):
//
//	pinsim -fig all -quick -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof pinsim cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/irqsim"
	"repro/internal/profiling"
	"repro/internal/storecli"
	"repro/internal/topology"
)

// stopProfiles finishes any active pprof captures; fatalf routes through it
// so a failed run still leaves a readable CPU profile behind.
var stopProfiles = func() {}

func main() {
	var (
		fig       = flag.String("fig", "", "scenario to regenerate: 3..8, 'all', or any registered name (see -list)")
		scenario  = flag.String("scenario", "", "run a user-defined scenario from a JSON spec file")
		list      = flag.Bool("list", false, "list the registered scenarios and exit")
		table     = flag.Int("table", 0, "table to print: 1..3")
		chr       = flag.Bool("chr", false, "run the §IV-A CHR band analysis")
		decompose = flag.Int("decompose", 0, "PTO/PSO decomposition of a figure (3..6)")
		reps      = flag.Int("reps", 0, "override repetitions per cell (0 = paper defaults)")
		seed      = flag.Uint64("seed", 42, "random seed")
		quick     = flag.Bool("quick", false, "shrink workloads for a fast pass")
		workers   = flag.Int("workers", 0, "trial fan-out (0 = GOMAXPROCS, 1 = serial)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a text table")
		breakdown = flag.Bool("breakdown", false, "also emit the overhead attribution")
		fitmodel  = flag.Bool("model", false, "fit and print the §VI analytic overhead model (from figs 3-6)")
		profile   = flag.Bool("profile", false, "profile one deployment with the BCC-analog instruments")
		app       = flag.String("app", "ffmpeg", "profiled app: ffmpeg, mpi, wordpress, cassandra")
		plat      = flag.String("platform", "cn", "profiled platform: bm, vm, cn, vmcn")
		mode      = flag.String("mode", "vanilla", "profiled mode: vanilla, pinned")
		size      = flag.String("size", "xLarge", "profiled instance type (Table II name)")
		store     = flag.String("store", "", "durable trial store directory: results persist and repeat runs replay instead of simulating")
		merge     = flag.String("merge", "", "comma list of trial store directories to load before running (assembles -shard runs)")
		shard     = flag.String("shard", "", "run only shard i/n of every trial grid (e.g. 0/2); pair with -store, then assemble with -merge")
		degraded  = flag.String("store-degraded", "fail", "unusable -store directory policy: fail (abort before simulating) or allow (run memory-only with one warning)")
		verbose   = flag.Bool("v", false, "print trial store statistics on stderr after the run")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stop, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiles = stop
	defer stop()

	cfg := experiments.Config{Reps: *reps, Seed: *seed, Quick: *quick, Workers: *workers}

	sharded, finishStore, err := storecli.Apply("pinsim", &cfg, storecli.Options{
		Store: *store, Merge: *merge, Shard: *shard, Degraded: *degraded, Workers: *workers, Verbose: *verbose,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer finishStore()
	if sharded && (*chr || *decompose != 0 || *fitmodel || *profile) {
		fatalf("-shard partitions plain trial grids; it does not support -chr, -decompose, -model or -profile")
	}

	out := os.Stdout
	did := false

	if *table != 0 {
		did = true
		switch *table {
		case 1:
			experiments.RenderTable1(out)
		case 2:
			experiments.RenderTable2(out)
		case 3:
			experiments.RenderTable3(out)
		default:
			fatalf("no table %d (have 1..3)", *table)
		}
	}

	render := func(f experiments.Figure) {
		// A shard run computes a deterministic subset of the grid; its
		// aggregate figure would be misleading, so rendering waits for the
		// -merge run that assembles every shard's store.
		if sharded {
			fmt.Fprintf(os.Stderr, "pinsim: shard %s of %s complete — render with -merge once every shard has run\n", *shard, f.ID)
			return
		}
		if *csv {
			f.RenderCSV(out)
		} else {
			f.RenderText(out)
		}
		if *breakdown {
			f.RenderBreakdown(out)
		}
	}

	if *list {
		did = true
		for _, sc := range experiments.Scenarios() {
			fmt.Fprintf(out, "%-12s %s\n", sc.Name, sc.Description)
		}
	}

	if *fig != "" {
		did = true
		var names []string
		if *fig == "all" {
			names = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8"}
		} else {
			name := *fig
			// Bare figure numbers keep working: "3" means "fig3".
			if _, err := strconv.Atoi(name); err == nil {
				name = "fig" + name
			}
			names = []string{name}
		}
		for _, name := range names {
			f, err := experiments.RunRegistered(name, cfg)
			if err != nil {
				fatalf("%v", err)
			}
			render(f)
		}
	}

	if *scenario != "" {
		did = true
		sc, err := experiments.ResolveScenario(*scenario)
		if err != nil {
			fatalf("%v", err)
		}
		f, err := experiments.RunScenario(cfg, sc)
		if err != nil {
			fatalf("scenario %s: %v", sc.Name, err)
		}
		render(f)
	}

	if *chr {
		did = true
		bands, err := experiments.RunCHRSweep(cfg)
		if err != nil {
			fatalf("chr sweep: %v", err)
		}
		experiments.RenderCHR(out, bands)
	}

	if *decompose != 0 {
		did = true
		f, err := experiments.RunFigure(*decompose, cfg)
		if err != nil {
			fatalf("figure %d: %v", *decompose, err)
		}
		experiments.RenderDecomposition(out, f, experiments.Decompose(f))
	}

	if *fitmodel {
		did = true
		m, err := experiments.FitModel([]int{3, 4, 5, 6}, cfg)
		if err != nil {
			fatalf("model: %v", err)
		}
		host := cfg.Host
		if host == nil {
			host = topology.PaperHost()
		}
		m.Render(out, host.NumCPUs())
	}

	if *profile {
		did = true
		res, err := experiments.RunProfile(experiments.ProfileSpec{
			App: *app, Platform: *plat, Mode: *mode, Size: *size,
		}, cfg)
		if err != nil {
			fatalf("profile: %v", err)
		}
		fmt.Fprintf(out, "profile: %s on %s/%s %s — metric %.3fs, %d trace events\n\n",
			*app, *plat, *mode, *size, res.MetricSecs, res.Collector.Events())
		res.Collector.Report(out)
		fmt.Fprintf(out, "\n== iostat (completion affinity per device) ==\n")
		irqsim.RenderIOStat(out, res.Channels)
	}

	if !did {
		flag.Usage()
		stopProfiles()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pinsim: "+format+"\n", args...)
	stopProfiles()
	os.Exit(1)
}
