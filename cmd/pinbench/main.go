// Command pinbench runs the repository's REAL workload substrates —
// the DCT transcoder (FFmpeg analog), minimpi Search/Prime (Open MPI
// analog), the mini CMS under load (WordPress analog) and the kvstore
// stress (Cassandra analog) — on the current machine, optionally pinned to
// a CPU set, and reports wall times. It is the laptop-scale companion to
// the simulator: same workloads, real kernel.
//
// Usage:
//
//	pinbench -workload transcode [-cpus 0-3] [-workers 8]
//	pinbench -workload mpi       [-cpus 0-1] [-ranks 4]
//	pinbench -workload web       [-requests 500]
//	pinbench -workload kv        [-ops 2000] [-threads 50]
//	pinbench -workload all
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/affinity"
	"repro/internal/kvstore"
	"repro/internal/minimpi"
	"repro/internal/topology"
	"repro/internal/transcode"
	"repro/internal/webapp"
)

func main() {
	var (
		workloadName = flag.String("workload", "all", "transcode|mpi|web|kv|all")
		cpus         = flag.String("cpus", "", "pin the run to this cpu list (empty = unpinned)")
		workers      = flag.Int("workers", 8, "transcode worker count (≤16)")
		ranks        = flag.Int("ranks", 4, "MPI rank count")
		requests     = flag.Int("requests", 500, "web load request count")
		ops          = flag.Int("ops", 2000, "kv stress operation count")
		threads      = flag.Int("threads", 50, "kv stress thread count")
	)
	flag.Parse()

	var pinned topology.CPUSet
	if *cpus != "" {
		var err error
		pinned, err = topology.ParseList(*cpus)
		if err != nil {
			fatal(err)
		}
		if !affinity.Supported() {
			fatal(fmt.Errorf("affinity syscalls unsupported on this platform; drop -cpus"))
		}
		// Pin the whole process, not just one thread: the workloads are
		// multi-goroutine.
		if err := affinity.Set(0, pinned); err != nil {
			fatal(err)
		}
		fmt.Printf("process pinned to %s\n", pinned)
	}

	run := func(name string, fn func() error) {
		t0 := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("%-10s %10.3fs\n", name, time.Since(t0).Seconds())
	}

	all := *workloadName == "all"
	if all || *workloadName == "transcode" {
		run("transcode", func() error {
			job := transcode.DefaultJob()
			job.Workers = *workers
			res, err := transcode.Run(job)
			if err == nil {
				fmt.Printf("  %d frames, %d blocks, PSNR %.1f dB\n", res.Frames, res.Blocks, res.PSNR)
			}
			return err
		})
	}
	if all || *workloadName == "mpi" {
		run("mpi", func() error {
			// Search for a value that provably exists: element 12345 of the
			// synthetic array.
			const n = 1 << 20
			target := (int64(12345) * 2654435761) % (2 * n)
			res, err := minimpi.Search(*ranks, n, target, time.Minute)
			if err != nil {
				return err
			}
			count, err := minimpi.Prime(*ranks, 50_000, time.Minute)
			if err != nil {
				return err
			}
			fmt.Printf("  search found=%v idx=%d; primes(≤50k)=%d\n", res.Found, res.Index, count)
			return nil
		})
	}
	if all || *workloadName == "web" {
		run("web", func() error {
			srv := httptest.NewServer(webapp.NewServer(webapp.DefaultConfig()))
			defer srv.Close()
			cfg := webapp.DefaultLoad()
			cfg.Requests = *requests
			res, err := webapp.RunLoad(srv.URL, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  %d requests (%d errors): mean %v, p95 %v\n",
				res.Requests, res.Errors, res.Mean, res.P95)
			return nil
		})
	}
	if all || *workloadName == "kv" {
		run("kv", func() error {
			dir, err := os.MkdirTemp("", "pinbench-kv")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			store, err := kvstore.Open(kvstore.DefaultOptions(dir))
			if err != nil {
				return err
			}
			defer store.Close()
			cfg := kvstore.DefaultStress()
			cfg.Ops = *ops
			cfg.Threads = *threads
			res, err := kvstore.Stress(store, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  %d ops (%d errors): mean %v, p99 %v, %d reads / %d writes\n",
				res.Ops, res.Errors, res.MeanOp, res.P99, res.ReadCount, res.WriteCount)
			return nil
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pinbench:", err)
	os.Exit(1)
}
