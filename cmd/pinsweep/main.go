// Command pinsweep runs user-defined experiment grids beyond the paper's
// fixed figures: any cross product of platforms × modes × instance sizes
// (CHR points) × workload classes × memory sizes, fanned across a parallel
// worker pool with deterministic per-trial seeding — the sweep output is
// bit-identical at any worker count.
//
// Usage:
//
//	pinsweep                                     # standard series × Table II sizes, FFmpeg
//	pinsweep -platforms cn,vm -modes vanilla,pinned -cores 2,4,8,16
//	pinsweep -workloads ffmpeg,wordpress -reps 5 -seed 7
//	pinsweep -cores 16 -mem 16,32,64             # memory axis (0 = 4 GB/core)
//	pinsweep -host small16                       # CHR against the 16-core host
//	pinsweep -format csv                         # or json, text (default)
//	pinsweep -quick -workers 4 -progress
//	pinsweep -scenario fig7                      # run a registered scenario instead
//	pinsweep -scenario run.json                  # or a user-defined JSON spec
//
// Incremental and distributed sweeps (the durable trial store):
//
//	pinsweep -cores 2,4,8 -store runs/           # cold: simulate + persist
//	pinsweep -cores 2,4,8 -store runs/           # warm: replay, 0 simulations
//	pinsweep -shard 0/2 -store s0/               # machine 1 of 2
//	pinsweep -shard 1/2 -store s1/               # machine 2 of 2
//	pinsweep -merge s0/,s1/                      # assemble the identical sweep
//	pinsweep -store runs/ -v                     # print store statistics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/profiling"
	"repro/internal/storecli"
	"repro/internal/topology"
)

// stopProfiles finishes any active pprof captures; fatalf routes through it
// so a failed sweep still leaves a readable CPU profile behind.
var stopProfiles = func() {}

func main() {
	var (
		platforms = flag.String("platforms", "", "comma list of platforms: bm,vm,cn,vmcn (default: all)")
		modes     = flag.String("modes", "", "comma list of provisioning modes: vanilla,pinned (default: both)")
		cores     = flag.String("cores", "", "comma list of instance sizes in cores (default: Table II sizes)")
		workloads = flag.String("workloads", "ffmpeg", "comma list of workloads: "+strings.Join(experiments.WorkloadNames, ","))
		mem       = flag.String("mem", "", "comma list of instance memory sizes in GB (0 = 4 GB/core)")
		reps      = flag.Int("reps", 0, "repetitions per cell (0 = 3, or 2 with -quick)")
		seed      = flag.Uint64("seed", 42, "random seed")
		quick     = flag.Bool("quick", false, "shrink workloads for a fast pass")
		workers   = flag.Int("workers", 0, "trial fan-out (0 = GOMAXPROCS, 1 = serial)")
		host      = flag.String("host", "paper", "host topology: paper (112 CPUs) or small16")
		scenario  = flag.String("scenario", "", "run a registered scenario (by name) or a JSON spec file instead of a grid sweep")
		format    = flag.String("format", "text", "output format: text, csv or json")
		progress  = flag.Bool("progress", false, "report trial progress on stderr")
		store     = flag.String("store", "", "durable trial store directory: results persist and repeat runs replay instead of simulating")
		merge     = flag.String("merge", "", "comma list of trial store directories to load before running (assembles -shard runs)")
		shardSpec = flag.String("shard", "", "run only shard i/n of the trial grid (e.g. 0/2); pair with -store, then assemble with -merge")
		degraded  = flag.String("store-degraded", "fail", "unusable -store directory policy: fail (abort before simulating) or allow (run memory-only with one warning)")
		verbose   = flag.Bool("v", false, "print trial store statistics on stderr after the run")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stop, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiles = stop
	defer stop()

	cfg := experiments.Config{
		Reps:    *reps,
		Seed:    *seed,
		Quick:   *quick,
		Workers: *workers,
	}
	sharded, finishStore, err := storecli.Apply("pinsweep", &cfg, storecli.Options{
		Store: *store, Merge: *merge, Shard: *shardSpec, Degraded: *degraded, Workers: *workers, Verbose: *verbose,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer finishStore()
	switch *host {
	case "paper", "":
		// default host
	case "small16":
		cfg.Host = topology.SmallHost16()
	default:
		fatalf("unknown -host %q (have paper, small16)", *host)
	}
	if *progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *scenario != "" {
		runScenario(cfg, *scenario, *format, sharded, *shardSpec)
		return
	}

	spec := experiments.SweepSpec{
		Platforms: parsePlatforms(*platforms, *modes),
		Cores:     parseInts("cores", *cores),
		Workloads: parseList(*workloads),
		MemGB:     parseInts("mem", *mem),
		Reps:      *reps,
	}

	res, err := experiments.Sweep(cfg, spec)
	if err != nil {
		fatalf("%v", err)
	}
	if sharded {
		fmt.Fprintf(os.Stderr, "pinsweep: shard %s complete — render with -merge once every shard has run\n", *shardSpec)
		return
	}
	render(*format, res.RenderText, res.RenderCSV, res)
}

// render is the single -format dispatch for both result shapes (sweep and
// scenario): aligned text, CSV, or indented JSON of jsonVal.
func render(format string, text, csv func(w io.Writer), jsonVal any) {
	switch format {
	case "text":
		text(os.Stdout)
	case "csv":
		csv(os.Stdout)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonVal); err != nil {
			fatalf("json: %v", err)
		}
	default:
		fatalf("unknown -format %q (have text, csv, json)", format)
	}
}

// runScenario resolves -scenario (registered name or JSON spec file, see
// experiments.ResolveScenario) and renders the resulting figure. A shard
// run computes (and persists) its grid partition without rendering — the
// -merge run assembles the full figure.
func runScenario(cfg experiments.Config, nameOrPath, format string, sharded bool, shardSpec string) {
	sc, err := experiments.ResolveScenario(nameOrPath)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := experiments.RunScenario(cfg, sc)
	if err != nil {
		fatalf("scenario %s: %v", sc.Name, err)
	}
	if sharded {
		fmt.Fprintf(os.Stderr, "pinsweep: shard %s of %s complete — render with -merge once every shard has run\n", shardSpec, sc.Name)
		return
	}
	render(format, f.RenderText, f.RenderCSV, f)
}

// parsePlatforms crosses the -platforms and -modes axes into specs. Empty
// inputs mean "all" on that axis; both empty leaves the SweepSpec default
// (the standard seven series, which omits vanilla BM duplicates).
func parsePlatforms(platforms, modes string) []platform.Spec {
	if platforms == "" && modes == "" {
		return nil
	}
	kinds := map[string]platform.Kind{
		"bm": platform.BM, "vm": platform.VM, "cn": platform.CN, "vmcn": platform.VMCN,
	}
	modeBy := map[string]platform.Mode{
		"vanilla": platform.Vanilla, "pinned": platform.Pinned,
	}
	kindList := parseList(platforms)
	if platforms == "" {
		kindList = []string{"bm", "vm", "cn", "vmcn"}
	}
	modeList := parseList(modes)
	if modes == "" {
		modeList = []string{"vanilla", "pinned"}
	}
	var out []platform.Spec
	for _, k := range kindList {
		kind, ok := kinds[strings.ToLower(k)]
		if !ok {
			fatalf("unknown platform %q (have bm, vm, cn, vmcn)", k)
		}
		for _, m := range modeList {
			mode, ok := modeBy[strings.ToLower(m)]
			if !ok {
				fatalf("unknown mode %q (have vanilla, pinned)", m)
			}
			// Pinning bare metal is not a platform of the paper's matrix.
			if kind == platform.BM && mode == platform.Pinned {
				continue
			}
			out = append(out, platform.Spec{Kind: kind, Mode: mode})
		}
	}
	if len(out) == 0 {
		// An empty list would silently fall back to the sweep default (all
		// series) — the opposite of what a narrowing flag asked for.
		fatalf("-platforms/-modes selected nothing (pinned bare metal is not a platform of the matrix)")
	}
	return out
}

func parseList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(name, s string) []int {
	var out []int
	for _, f := range parseList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			fatalf("bad -%s entry %q: %v", name, f, err)
		}
		out = append(out, n)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pinsweep: "+format+"\n", args...)
	stopProfiles()
	os.Exit(1)
}
