// Command pinhyp runs the hypothesis harness: every registered falsifiable
// claim (or one named claim) executes its scenario across adaptively-many
// seeds and the confirm/refute verdicts render as a deterministic
// FINDINGS.md — byte-identical at any -workers count and any -store
// warmth, which is what lets the committed findings file act as a
// regression gate.
//
// Usage:
//
//	pinhyp -list                         # catalog: name, scenario, claim
//	pinhyp -run all                      # run everything, FINDINGS.md to stdout
//	pinhyp -run all -findings FINDINGS.md
//	pinhyp -run nesting-depth-compounds  # one hypothesis
//	pinhyp -run all -quick               # CI profile (quick workloads)
//	pinhyp -run all -store runs/ -v      # durable store: warm reruns simulate nothing
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/hypotheses"
	"repro/internal/storecli"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list registered hypotheses and exit")
		run       = flag.String("run", "", "hypothesis to run, or \"all\"")
		findings  = flag.String("findings", "", "write FINDINGS.md to this path (default: stdout)")
		seed      = flag.Uint64("seed", 42, "harness base seed")
		quick     = flag.Bool("quick", false, "shrink workloads for a fast pass (the CI profile)")
		workers   = flag.Int("workers", 0, "per-scenario trial fan-out (0 = GOMAXPROCS, 1 = serial)")
		resamples = flag.Int("resamples", 1000, "bootstrap resample count")
		store     = flag.String("store", "", "durable trial store directory: results persist and repeat runs replay instead of simulating")
		merge     = flag.String("merge", "", "comma list of trial store directories to load before running")
		degraded  = flag.String("store-degraded", "fail", "unusable -store directory policy: fail (abort before simulating) or allow (run memory-only with one warning)")
		progress  = flag.Bool("progress", false, "report per-hypothesis seed progress on stderr")
		verbose   = flag.Bool("v", false, "print trial store statistics on stderr after the run")
	)
	flag.Parse()

	if *list {
		for _, h := range hypotheses.All() {
			fmt.Printf("%-32s %-12s %s\n", h.Name, h.Scenario, h.Claim)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "pinhyp: nothing to do — pass -list or -run name|all")
		flag.Usage()
		os.Exit(2)
	}

	// The store flags ride the shared storecli surface so pinhyp cannot
	// drift from pinsim/pinsweep in store semantics; the experiments.Config
	// is only the carrier, its Memo is what the harness borrows.
	var ecfg experiments.Config
	_, finishStore, err := storecli.Apply("pinhyp", &ecfg, storecli.Options{
		Store: *store, Merge: *merge, Degraded: *degraded, Verbose: *verbose,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer finishStore()

	cfg := hypotheses.Config{
		Seed:      *seed,
		Quick:     *quick,
		Workers:   *workers,
		Store:     ecfg.Memo,
		Resamples: *resamples,
	}
	if *progress {
		cfg.Progress = func(name string, seeds int) {
			fmt.Fprintf(os.Stderr, "pinhyp: %s: seed %d done\n", name, seeds)
		}
	}

	var found []hypotheses.Finding
	if *run == "all" {
		found, err = hypotheses.RunAll(cfg)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		h, ok := hypotheses.ByName(*run)
		if !ok {
			fatalf("%v", hypotheses.UnknownError(*run))
		}
		f, err := hypotheses.Run(h, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		found = []hypotheses.Finding{f}
	}

	profile := hypotheses.Profile{Quick: *quick, Seed: *seed, Resamples: *resamples}
	out := os.Stdout
	if *findings != "" {
		f, err := os.Create(*findings)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
		out = f
	}
	hypotheses.RenderFindings(out, found, profile)

	// A refuted or inconclusive finding is a result, not a failure: the
	// exit code stays 0 so the regression gate is the byte-compare against
	// the committed FINDINGS.md, where a status flip shows up as a diff.
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pinhyp: "+format+"\n", args...)
	os.Exit(1)
}
